//! The selection stage of the cycle pipeline: constraint-cube construction,
//! target ordering, candidate generation and greedy scoring.

use tvs_exec::TaskPanic;
use tvs_logic::{BitVec, Cube, Logic};
use tvs_netlist::{Netlist, ScanView};

use tvs_atpg::PodemResult;
use tvs_fault::{Fault, FaultSim, Scoap, SlotSpec};
use tvs_scan::{ObserveTransform, ScanChain};

use crate::state::RunState;

impl RunState<'_, '_> {
    /// Builds the constraint cube for a `k`-bit stitched cycle.
    pub(crate) fn constraint(&self, k: usize, first: bool) -> Cube {
        let (p, l) = (self.p(), self.l());
        let mut cube = Cube::unspecified(p + l);
        if !first {
            for j in k..l {
                cube.set(p + j, Logic::from(self.good_image.get(j - k)));
            }
        }
        cube
    }

    /// Orders the current `f_u` according to the configured strategy.
    pub(crate) fn ordered_targets(&mut self) -> Vec<usize> {
        let mut targets = self.sets.uncaught_indices();
        targets.retain(|i| !self.never_target.contains(i));
        let strat = self.cfg.strategy.resolve();
        strat.order_targets(&mut self.strategy_ctx(), &mut targets);
        targets
    }

    /// Which combinational outputs a `k`-bit cycle makes observable: every
    /// PO, plus the scan cells that the *next* shift will expose (sound for
    /// monotone shift policies under direct observation; under horizontal
    /// XOR it is a targeting heuristic — exact classification stays lazy).
    pub(crate) fn observable_flags(&self, k: usize) -> Vec<bool> {
        let (q, l) = (self.q(), self.l());
        let mut flags = vec![false; q + l];
        for f in flags.iter_mut().take(q) {
            *f = true;
        }
        for j in l.saturating_sub(k)..l {
            flags[q + j] = true;
        }
        flags
    }

    /// Tries to produce the next vector for a `k`-bit cycle; `None` when
    /// the shift size is exhausted.
    pub(crate) fn select_vector(
        &mut self,
        k: usize,
        first: bool,
    ) -> Result<Option<BitVec>, TaskPanic> {
        let constraint = self.constraint(k, first);
        let observable = self.observable_flags(if first { self.l() } else { k });
        let targets = self.ordered_targets();
        let mut candidates: Vec<BitVec> = Vec::new();

        // Phase A: demand propagation to an observable point (PO or a
        // next-shift-exposed cell) — every such vector's target is
        // guaranteed to reach f_c. Phase B (only if A yields nothing):
        // accept any differentiation; the target becomes hidden and bets on
        // the paper's mutated-stimulus mechanism. The stagnation guard in
        // `run` escalates the shift size if those bets stop paying off.
        let mut stats = [0usize; 4]; // [A-ok, A-fail, B-ok, B-fail]
        for phase in 0..2 {
            let mut attempts = 0usize;
            for &idx in &targets {
                if self.failed_targets.contains(&idx) {
                    continue;
                }
                if attempts >= self.cfg.max_targets_per_cycle {
                    break;
                }
                attempts += 1;
                let fault = self.sets.fault(idx);
                let outcome = if phase == 0 {
                    self.podem
                        .generate_observable(fault, &constraint, Some(&observable))
                } else {
                    self.podem.generate(fault, &constraint)
                };
                self.budget
                    .charge(1 + u64::from(self.podem.last_backtracks()));
                match outcome {
                    PodemResult::Test(cube) => {
                        stats[phase * 2] += 1;
                        let bits = cube.random_fill(&mut self.rng);
                        if !self.cfg.strategy.resolve().is_greedy() {
                            return Ok(Some(bits));
                        }
                        candidates.push(bits);
                        if candidates.len() >= self.cfg.candidates {
                            break;
                        }
                    }
                    PodemResult::Untestable | PodemResult::Aborted => {
                        stats[phase * 2 + 1] += 1;
                        if phase == 1 {
                            self.failed_targets.insert(idx);
                        }
                    }
                }
            }
            if !candidates.is_empty() {
                break;
            }
        }
        // lint:allow(SRC006) -- debug tracing gate; never influences results
        if std::env::var_os("TVS_DEBUG").is_some() {
            eprintln!(
                "[tvs] select k={k} targets={} A:{}/{} B:{}/{}",
                targets.len(),
                stats[0],
                stats[1],
                stats[2],
                stats[3]
            );
        }

        // Phase C: context rotation. Constrained ATPG can be blocked not by
        // the shift size but by the *particular* retained response pattern;
        // applying a cheap filler vector changes that pattern and often
        // unblocks targets at the same k. Accept a random completion of the
        // constraint if it at least differentiates some uncaught fault (the
        // stagnation guard in `run` still bounds fruitless rotation).
        if candidates.is_empty() && !first {
            let uncaught = self.sets.uncaught_indices();
            let faults: Vec<Fault> = uncaught.iter().map(|&i| self.sets.fault(i)).collect();
            for _ in 0..4 {
                let bits = constraint.random_fill(&mut self.rng);
                self.budget.charge(faults.len() as u64);
                if self.detect(&bits, &faults).iter().any(|&h| h) {
                    return Ok(Some(bits));
                }
            }
        }

        if candidates.is_empty() {
            return Ok(None);
        }
        if candidates.len() == 1 {
            return Ok(candidates.pop());
        }

        // Greedy scoring. Three kinds of value, in decreasing weight:
        // catches of f_u faults (a difference at a PO or in the next-shift-
        // observed cells), catches/preservation of the *hidden* pool (an
        // erased hidden fault wastes its earlier differentiation — the
        // paper's §6.2 concern), and plain differentiations as tiebreak.
        //
        // Each candidate's score is a pure function of the candidate bits
        // and the (frozen) fault/hidden state, so the candidates fan out
        // over the pool; the strict first-best argmax below runs over the
        // input-ordered score vector, keeping the pick bit-identical at any
        // thread count.
        let uncaught = self.sets.uncaught_indices();
        let faults: Vec<Fault> = uncaught.iter().map(|&i| self.sets.fault(i)).collect();
        let weighted = self.cfg.strategy.resolve().weighted_scoring();
        let (p, q, l) = (self.p(), self.q(), self.l());
        let watched: Vec<usize> = (0..q).chain(q + l.saturating_sub(k)..q + l).collect();
        // Hidden machines: image and fault per hidden index. The shift-out
        // stream is candidate-independent; only the post-capture fate
        // varies, via the fresh incoming bits.
        let hidden: Vec<(Fault, BitVec)> = self
            .sets
            .hidden_faults()
            .into_iter()
            .map(|h| (h.fault, h.image))
            .collect();
        let ctx = ScoreCtx {
            netlist: self.eng.netlist,
            view: &self.eng.view,
            chain: &self.eng.chain,
            scoap: &self.scoap,
            observe: self.cfg.observe,
            faults: &faults,
            hidden: &hidden,
            watched: &watched,
            weighted,
            p,
            l,
            k,
        };
        self.budget
            .charge((candidates.len() * (faults.len() + hidden.len() + 1)) as u64);
        let scores = self.pool.try_map(&candidates, |_, bits| ctx.score(bits))?;
        let mut best = 0usize;
        let mut best_score = 0u64;
        for (c, &score) in scores.iter().enumerate() {
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        Ok(Some(candidates.swap_remove(best)))
    }
}

/// Frozen inputs of one candidate-scoring round. [`ScoreCtx::score`] is a
/// pure function of this context plus the candidate bits (each invocation
/// builds its own session-backed simulator, seeded once with the candidate's
/// good machine so every fault sweep is incremental), which is what lets
/// `select_vector` fan the candidates out over the thread pool.
struct ScoreCtx<'c> {
    netlist: &'c Netlist,
    view: &'c ScanView,
    chain: &'c ScanChain,
    scoap: &'c Scoap,
    observe: ObserveTransform,
    faults: &'c [Fault],
    hidden: &'c [(Fault, BitVec)],
    watched: &'c [usize],
    weighted: bool,
    p: usize,
    l: usize,
    k: usize,
}

impl ScoreCtx<'_> {
    fn score(&self, bits: &BitVec) -> u64 {
        let mut fsim = FaultSim::new(self.netlist, self.view);
        let good = fsim.good_outputs(bits);
        let mut score = 0u64;
        for chunk in self.faults.chunks(63) {
            let slots: Vec<SlotSpec<'_>> = chunk
                .iter()
                .map(|&f| SlotSpec {
                    stimulus: bits,
                    fault: Some(f),
                })
                .collect();
            let outs = match fsim.run_slots(&slots) {
                Ok(outs) => outs,
                Err(_) => unreachable!("63 view-width slots per sweep"),
            };
            for (f, out) in chunk.iter().zip(&outs) {
                let caught = self.watched.iter().any(|&o| out.get(o) != good.get(o));
                let differentiated = caught || out != &good;
                let unit = if self.weighted {
                    self.scoap.fault_hardness(self.netlist, f).max(1)
                } else {
                    1
                };
                if caught {
                    score += unit * 1000;
                } else if differentiated {
                    score += unit;
                }
            }
        }
        if !self.hidden.is_empty() {
            let chain_tv = bits.slice(self.p..self.p + self.l);
            let incoming = chain_tv.rev_slice(0..self.k);
            let mut stimuli: Vec<BitVec> = Vec::with_capacity(self.hidden.len());
            for (_, image) in self.hidden {
                let sh = self.chain.shift(image, &incoming, self.observe);
                let mut stim = bits.slice(0..self.p);
                stim.extend(sh.new_image.iter());
                stimuli.push(stim);
            }
            for (chunk_i, chunk) in self.hidden.chunks(63).enumerate() {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, &(fault, _))| SlotSpec {
                        stimulus: &stimuli[chunk_i * 63 + j],
                        fault: Some(fault),
                    })
                    .collect();
                let outs = match fsim.run_slots(&slots) {
                    Ok(outs) => outs,
                    Err(_) => unreachable!("63 view-width slots per sweep"),
                };
                for out in &outs {
                    let caught = self.watched.iter().any(|&o| out.get(o) != good.get(o));
                    let kept = out != &good;
                    if caught {
                        score += 1000;
                    } else if kept {
                        score += 30;
                    }
                }
            }
        }
        score
    }
}
