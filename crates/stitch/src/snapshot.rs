//! Versioned, checksummed checkpoints of an in-flight stitched run.
//!
//! A [`Snapshot`] captures everything [`StitchEngine::run_with`] needs to
//! continue a run exactly where it stopped: the three fault sets (with every
//! hidden fault's private chain image), the program emitted so far, the
//! cursor of the shift-size schedule and the raw PRNG state. Resuming from a
//! snapshot is **bit-identical** to never having stopped, at any thread
//! count — the snapshot records state, never timing.
//!
//! The on-disk form is a line-oriented text format (`tvs-snapshot v2`)
//! closed by an FNV-1a-64 checksum line, so truncated or corrupted files are
//! rejected with a typed [`SnapshotError`] instead of resuming from garbage.
//! Floating-point fields are stored as raw IEEE-754 bits, keeping the
//! round-trip exact. Version 2 added the `strategy-cursor` line (the
//! pluggable strategy's persistent state); v1 files are rejected as a
//! foreign version — their fingerprints predate the strategy layer anyway.
//!
//! [`StitchEngine::run_with`]: crate::StitchEngine::run_with

use std::error::Error;
use std::fmt;

use tvs_logic::BitVec;

use crate::CycleRecord;

/// The format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 2;

const HEADER: &str = "tvs-snapshot v2";

/// Errors from parsing or validating a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The text ends before the closing checksum line.
    Truncated,
    /// The body does not hash to the recorded checksum.
    Checksum {
        /// The checksum the file claims.
        expected: u64,
        /// The checksum the body actually hashes to.
        found: u64,
    },
    /// The header names a version this build does not read.
    Version(String),
    /// A body line is malformed.
    Parse {
        /// 1-based line number of the defect.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The snapshot is well-formed but belongs to a different circuit or
    /// configuration than the resuming run.
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated before its checksum line"),
            SnapshotError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch: file claims {expected:016x}, body hashes to {found:016x}"
            ),
            SnapshotError::Version(v) => write!(f, "unsupported snapshot header {v:?}"),
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
            SnapshotError::Mismatch(what) => write!(f, "snapshot does not match this run: {what}"),
        }
    }
}

impl Error for SnapshotError {}

/// One collapsed fault's checkpointed classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEntry {
    /// Proven redundant by the prescreen (never tracked).
    Redundant,
    /// Tracked, currently in `f_u`.
    Uncaught,
    /// Tracked, currently in `f_c`.
    Caught,
    /// Tracked, currently in `f_h`, with its private chain image.
    Hidden(BitVec),
}

/// A resumable checkpoint of a stitched run, taken at a cycle boundary.
///
/// Faults are recorded positionally against the engine's collapsed fault
/// list (which is a pure function of the netlist), so no fault identities
/// need serializing; the `circuit`/`gate_count`/`scan_len`/`fault_count`
/// fields plus the configuration fingerprint guard against resuming into
/// the wrong run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Netlist name, for mismatch detection.
    pub circuit: String,
    /// Netlist gate count, for mismatch detection.
    pub gate_count: usize,
    /// Scan-chain length.
    pub scan_len: usize,
    /// Collapsed fault-list length.
    pub fault_count: usize,
    /// FNV hash of the semantic [`StitchConfig`](crate::StitchConfig)
    /// fields — everything except `threads` and `budget`, which may differ
    /// between the interrupted and the resuming invocation without changing
    /// the result stream.
    pub config_fingerprint: u64,
    /// Raw xoshiro256** state of the run's PRNG.
    pub rng: [u64; 4],
    /// Work units spent when the checkpoint was taken.
    pub budget_spent: u64,
    /// The strategy's persistent cursor words (opaque to the snapshot
    /// layer; strategies validate their own cursor on use).
    pub strategy_cursor: Vec<u64>,
    /// Current shift size `k`.
    pub k: usize,
    /// Consecutive zero-catch cycles at the current shift size.
    pub stagnant: usize,
    /// The marginal-efficiency window: `(newly_caught, cycle_cost)` pairs.
    pub window: Vec<(usize, f64)>,
    /// The fault-free machine's current chain image.
    pub good_image: BitVec,
    /// Lifetime hidden-fault transition counters.
    pub transitions: (usize, usize, usize),
    /// The program so far, one record per applied cycle.
    pub cycles: Vec<CycleRecord>,
    /// One entry per collapsed fault, in list order.
    pub fault_entries: Vec<FaultEntry>,
    /// Tracked indices the prescreen marked never-target (PODEM aborts).
    pub never_target: Vec<usize>,
    /// Tracked indices that failed constrained ATPG at the current `k`.
    pub failed_targets: Vec<usize>,
}

/// FNV-1a-64 over a byte string — the checksum/fingerprint hash shared by
/// snapshots, the configuration fingerprint and the serve layer's
/// content-addressed artifact keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn bits_to_text(bits: &BitVec) -> String {
    if bits.is_empty() {
        "-".to_string()
    } else {
        bits.to_string()
    }
}

fn bits_from_text(text: &str) -> Option<BitVec> {
    if text == "-" {
        return Some(BitVec::new());
    }
    text.chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect()
}

impl Snapshot {
    /// Renders the snapshot as its versioned text form, checksum included.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        // Infallible: writing to a String cannot error. lint:allow(SRC005)
        let mut w = |line: String| writeln!(s, "{line}").expect("write to String");
        w(HEADER.to_string());
        w(format!(
            "circuit {} {} {} {}",
            self.gate_count, self.scan_len, self.fault_count, self.circuit
        ));
        w(format!("config {:016x}", self.config_fingerprint));
        w(format!(
            "rng {:016x} {:016x} {:016x} {:016x}",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        ));
        w(format!("budget-spent {}", self.budget_spent));
        w(format!("cursor {} {}", self.k, self.stagnant));
        w(format!("strategy-cursor {}", self.strategy_cursor.len()));
        for word in &self.strategy_cursor {
            w(format!("sc {word}"));
        }
        w(format!("window {}", self.window.len()));
        for &(caught, cost) in &self.window {
            w(format!("w {caught} {:016x}", cost.to_bits()));
        }
        w(format!("good-image {}", bits_to_text(&self.good_image)));
        w(format!(
            "transitions {} {} {}",
            self.transitions.0, self.transitions.1, self.transitions.2
        ));
        w(format!("cycles {}", self.cycles.len()));
        for c in &self.cycles {
            w(format!(
                "c {} {} {} {} {} {}",
                c.shift,
                c.newly_caught,
                c.hidden_after,
                c.uncaught_after,
                bits_to_text(&c.vector),
                bits_to_text(&c.observed)
            ));
        }
        w(format!("faults {}", self.fault_entries.len()));
        for e in &self.fault_entries {
            w(match e {
                FaultEntry::Redundant => "f R".to_string(),
                FaultEntry::Uncaught => "f U".to_string(),
                FaultEntry::Caught => "f C".to_string(),
                FaultEntry::Hidden(img) => format!("f H {}", bits_to_text(img)),
            });
        }
        w(index_line("never-target", &self.never_target));
        w(index_line("failed-targets", &self.failed_targets));
        let sum = fnv1a(s.as_bytes());
        s.push_str(&format!("checksum {sum:016x}\n"));
        s
    }

    /// Parses the text form, verifying header and checksum.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the closing checksum line is
    /// missing, [`SnapshotError::Checksum`] when the body was altered,
    /// [`SnapshotError::Version`] for a foreign header and
    /// [`SnapshotError::Parse`] for any malformed body line.
    pub fn parse(text: &str) -> Result<Self, SnapshotError> {
        let trimmed = text.trim_end_matches('\n');
        let (body, last) = match trimmed.rfind('\n') {
            Some(pos) => (&text[..pos + 1], &trimmed[pos + 1..]),
            None => return Err(SnapshotError::Truncated),
        };
        let expected = last
            .strip_prefix("checksum ")
            .ok_or(SnapshotError::Truncated)?;
        let expected =
            u64::from_str_radix(expected.trim(), 16).map_err(|_| SnapshotError::Truncated)?;
        let found = fnv1a(body.as_bytes());
        if expected != found {
            return Err(SnapshotError::Checksum { expected, found });
        }

        let mut lines = body.lines().enumerate();
        let mut next = |what: &str| -> Result<(usize, &str), SnapshotError> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or_else(|| SnapshotError::Parse {
                    line: 0,
                    message: format!("missing {what} line"),
                })
        };

        let (line, header) = next("header")?;
        if header != HEADER {
            return Err(SnapshotError::Version(header.to_string()));
        }
        let _ = line;

        let (line, text) = next("circuit")?;
        let rest = field(line, text, "circuit")?;
        let mut it = rest.splitn(4, ' ');
        let gate_count = parse_num(line, it.next(), "gate count")? as usize;
        let scan_len = parse_num(line, it.next(), "scan length")? as usize;
        let fault_count = parse_num(line, it.next(), "fault count")? as usize;
        let circuit = it
            .next()
            .ok_or_else(|| malformed(line, "missing circuit name"))?
            .to_string();

        let (line, text) = next("config")?;
        let config_fingerprint = parse_hex(line, field(line, text, "config")?)?;

        let (line, text) = next("rng")?;
        let mut it = field(line, text, "rng")?.split(' ');
        let mut rng = [0u64; 4];
        for slot in &mut rng {
            *slot = parse_hex(line, it.next().ok_or_else(|| malformed(line, "short rng"))?)?;
        }

        let (line, text) = next("budget-spent")?;
        let budget_spent = parse_num(line, Some(field(line, text, "budget-spent")?), "spent")?;

        let (line, text) = next("cursor")?;
        let mut it = field(line, text, "cursor")?.split(' ');
        let k = parse_num(line, it.next(), "k")? as usize;
        let stagnant = parse_num(line, it.next(), "stagnant")? as usize;

        let (line, text) = next("strategy-cursor")?;
        let scn = parse_num(
            line,
            Some(field(line, text, "strategy-cursor")?),
            "strategy-cursor count",
        )? as usize;
        let mut strategy_cursor = Vec::with_capacity(cap_alloc(scn));
        for _ in 0..scn {
            let (line, text) = next("strategy-cursor entry")?;
            let word = parse_num(line, Some(field(line, text, "sc")?), "cursor word")?;
            strategy_cursor.push(word);
        }

        let (line, text) = next("window")?;
        let wn = parse_num(line, Some(field(line, text, "window")?), "window count")? as usize;
        let mut window = Vec::with_capacity(cap_alloc(wn));
        for _ in 0..wn {
            let (line, text) = next("window entry")?;
            let mut it = field(line, text, "w")?.split(' ');
            let caught = parse_num(line, it.next(), "caught")? as usize;
            let cost = f64::from_bits(parse_hex(
                line,
                it.next().ok_or_else(|| malformed(line, "missing cost"))?,
            )?);
            window.push((caught, cost));
        }

        let (line, text) = next("good-image")?;
        let good_image = parse_bits(line, field(line, text, "good-image")?)?;

        let (line, text) = next("transitions")?;
        let mut it = field(line, text, "transitions")?.split(' ');
        let transitions = (
            parse_num(line, it.next(), "transitions")? as usize,
            parse_num(line, it.next(), "transitions")? as usize,
            parse_num(line, it.next(), "transitions")? as usize,
        );

        let (line, text) = next("cycles")?;
        let cn = parse_num(line, Some(field(line, text, "cycles")?), "cycle count")? as usize;
        let mut cycles = Vec::with_capacity(cap_alloc(cn));
        for _ in 0..cn {
            let (line, text) = next("cycle entry")?;
            let mut it = field(line, text, "c")?.split(' ');
            let shift = parse_num(line, it.next(), "shift")? as usize;
            let newly_caught = parse_num(line, it.next(), "newly caught")? as usize;
            let hidden_after = parse_num(line, it.next(), "hidden after")? as usize;
            let uncaught_after = parse_num(line, it.next(), "uncaught after")? as usize;
            let vector = parse_bits(
                line,
                it.next().ok_or_else(|| malformed(line, "missing vector"))?,
            )?;
            let observed = parse_bits(
                line,
                it.next()
                    .ok_or_else(|| malformed(line, "missing observed bits"))?,
            )?;
            cycles.push(CycleRecord {
                shift,
                vector,
                observed,
                newly_caught,
                hidden_after,
                uncaught_after,
            });
        }

        let (line, text) = next("faults")?;
        let fn_ = parse_num(line, Some(field(line, text, "faults")?), "fault count")? as usize;
        let mut fault_entries = Vec::with_capacity(cap_alloc(fn_));
        for _ in 0..fn_ {
            let (line, text) = next("fault entry")?;
            let rest = field(line, text, "f")?;
            let mut it = rest.splitn(2, ' ');
            let entry = match it.next() {
                Some("R") => FaultEntry::Redundant,
                Some("U") => FaultEntry::Uncaught,
                Some("C") => FaultEntry::Caught,
                Some("H") => FaultEntry::Hidden(parse_bits(
                    line,
                    it.next().ok_or_else(|| malformed(line, "missing image"))?,
                )?),
                other => return Err(malformed(line, &format!("unknown fault entry {other:?}"))),
            };
            fault_entries.push(entry);
        }

        let (line, text) = next("never-target")?;
        let never_target = parse_indices(line, field(line, text, "never-target")?)?;
        let (line, text) = next("failed-targets")?;
        let failed_targets = parse_indices(line, field(line, text, "failed-targets")?)?;

        Ok(Snapshot {
            circuit,
            gate_count,
            scan_len,
            fault_count,
            config_fingerprint,
            rng,
            budget_spent,
            strategy_cursor,
            k,
            stagnant,
            window,
            good_image,
            transitions,
            cycles,
            fault_entries,
            never_target,
            failed_targets,
        })
    }
}

/// Caps a section count before it is used as an allocation hint. The counts
/// come from the snapshot text itself, and the checksum only proves the file
/// is self-consistent, not honest — a forged `cycles 18446744073709551615`
/// line must not abort the process inside `Vec::with_capacity`. Real entries
/// still accumulate correctly past the hint (`push` grows), and a count
/// larger than the remaining lines fails the per-entry `next()` reads with a
/// typed parse error.
fn cap_alloc(n: usize) -> usize {
    n.min(4096)
}

fn index_line(key: &str, indices: &[usize]) -> String {
    if indices.is_empty() {
        format!("{key} -")
    } else {
        let list: Vec<String> = indices.iter().map(|i| i.to_string()).collect();
        format!("{key} {}", list.join(" "))
    }
}

fn parse_indices(line: usize, text: &str) -> Result<Vec<usize>, SnapshotError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(' ')
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| malformed(line, &format!("bad index {t:?}")))
        })
        .collect()
}

fn malformed(line: usize, message: &str) -> SnapshotError {
    SnapshotError::Parse {
        line,
        message: message.to_string(),
    }
}

fn field<'t>(line: usize, text: &'t str, key: &str) -> Result<&'t str, SnapshotError> {
    text.strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| malformed(line, &format!("expected a {key:?} line, got {text:?}")))
}

fn parse_num(line: usize, text: Option<&str>, what: &str) -> Result<u64, SnapshotError> {
    let text = text.ok_or_else(|| malformed(line, &format!("missing {what}")))?;
    text.parse::<u64>()
        .map_err(|_| malformed(line, &format!("bad {what} {text:?}")))
}

fn parse_hex(line: usize, text: &str) -> Result<u64, SnapshotError> {
    u64::from_str_radix(text, 16).map_err(|_| malformed(line, &format!("bad hex field {text:?}")))
}

fn parse_bits(line: usize, text: &str) -> Result<BitVec, SnapshotError> {
    bits_from_text(text).ok_or_else(|| malformed(line, &format!("bad bit string {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            circuit: "s27 variant".to_string(),
            gate_count: 17,
            scan_len: 3,
            fault_count: 5,
            config_fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            rng: [1, 2, u64::MAX, 0x1234_5678_9ABC_DEF0],
            budget_spent: 42,
            strategy_cursor: vec![7, 0, u64::MAX],
            k: 2,
            stagnant: 1,
            window: vec![(3, 10.25), (0, 8.5)],
            good_image: BitVec::from_bools([true, false, true]),
            transitions: (4, 2, 1),
            cycles: vec![
                CycleRecord {
                    shift: 3,
                    vector: BitVec::from_bools([true, true, false]),
                    observed: BitVec::new(),
                    newly_caught: 2,
                    hidden_after: 1,
                    uncaught_after: 2,
                },
                CycleRecord {
                    shift: 2,
                    vector: BitVec::from_bools([false, false, true]),
                    observed: BitVec::from_bools([false, true]),
                    newly_caught: 1,
                    hidden_after: 0,
                    uncaught_after: 2,
                },
            ],
            fault_entries: vec![
                FaultEntry::Redundant,
                FaultEntry::Caught,
                FaultEntry::Hidden(BitVec::from_bools([false, true, true])),
                FaultEntry::Uncaught,
                FaultEntry::Uncaught,
            ],
            never_target: vec![2],
            failed_targets: vec![],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let snap = sample();
        let text = snap.to_text();
        let back = Snapshot::parse(&text).expect("round trip");
        assert_eq!(back, snap);
    }

    #[test]
    fn truncation_and_corruption_are_typed() {
        let text = sample().to_text();
        // Drop the checksum line entirely.
        let cut = text.rfind("checksum").expect("has checksum");
        // A truncated file that still ends in some other line.
        let truncated = &text[..cut];
        assert_eq!(
            Snapshot::parse(truncated).unwrap_err(),
            SnapshotError::Truncated
        );
        // Flip a bit in the body: checksum catches it.
        let corrupt = text.replacen("cursor 2", "cursor 3", 1);
        assert!(matches!(
            Snapshot::parse(&corrupt).unwrap_err(),
            SnapshotError::Checksum { .. }
        ));
        // Empty input.
        assert_eq!(Snapshot::parse("").unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn foreign_versions_are_rejected() {
        for foreign in ["tvs-snapshot v9", "tvs-snapshot v1"] {
            let mut body = format!("{foreign}\n");
            let sum = fnv1a(body.as_bytes());
            body.push_str(&format!("checksum {sum:016x}\n"));
            assert_eq!(
                Snapshot::parse(&body).unwrap_err(),
                SnapshotError::Version(foreign.to_string())
            );
        }
    }

    #[test]
    fn empty_and_huge_strategy_cursors_round_trip() {
        let mut snap = sample();
        snap.strategy_cursor = Vec::new();
        let back = Snapshot::parse(&snap.to_text()).expect("empty cursor");
        assert_eq!(back.strategy_cursor, Vec::<u64>::new());
        // A count far past cap_alloc still parses (push grows past the
        // clamped hint) — entries, not the count line, bound the data.
        snap.strategy_cursor = (0..5000).map(|i| i as u64).collect();
        let back = Snapshot::parse(&snap.to_text()).expect("big cursor");
        assert_eq!(back.strategy_cursor.len(), 5000);
    }

    #[test]
    fn float_window_costs_survive_exactly() {
        let mut snap = sample();
        snap.window = vec![(1, 0.1 + 0.2), (0, f64::MIN_POSITIVE)];
        let back = Snapshot::parse(&snap.to_text()).expect("round trip");
        assert_eq!(back.window[0].1.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.window[1].1.to_bits(), f64::MIN_POSITIVE.to_bits());
    }
}
