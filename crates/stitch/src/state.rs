//! Mutable state of one stitched run plus its checkpoint/restore glue.
//!
//! [`RunState`] is shared by every stage of the cycle pipeline: the
//! selection stage ([`vector`](crate::vector)), the apply/classify stage
//! ([`cycle`](crate::cycle)) and the driver loop ([`run`](crate::run)).
//! Simulation goes through one persistent [`SimSession`] so the good-machine
//! baseline seeded for a cycle is reused incrementally by every faulty
//! sweep of that cycle.

use std::collections::{BTreeSet, VecDeque};

use tvs_exec::{inject, Budget, ThreadPool};
use tvs_logic::{BitVec, Cube, Prng};

use tvs_atpg::{generate_tests, Podem, PodemConfig, PodemResult};
use tvs_fault::{detect_parallel, Fault, Scoap, SimSession, StaticPrune};
use tvs_scan::CostModel;

use crate::config::config_fingerprint;
use crate::engine::StitchEngine;
use crate::run::{PodemVerdict, PrescreenRecord, PrescreenTrace, StitchError, StopCause};
use crate::snapshot::{FaultEntry, Snapshot, SnapshotError};
use crate::strategy::StrategyCtx;
use crate::{CycleRecord, FaultSets, FaultState, StitchConfig};

/// Mutable state of one `run` invocation.
pub(crate) struct RunState<'r, 'a> {
    pub(crate) eng: &'r StitchEngine<'a>,
    pub(crate) cfg: &'r StitchConfig,
    pub(crate) pool: ThreadPool,
    pub(crate) rng: Prng,
    pub(crate) podem: Podem<'r>,
    pub(crate) session: SimSession<'r>,
    pub(crate) scoap: Scoap,
    pub(crate) sets: FaultSets,
    pub(crate) good_image: BitVec,
    pub(crate) cycles: Vec<CycleRecord>,
    pub(crate) shifts: Vec<usize>,
    /// Targets that failed constrained ATPG at the current shift size.
    pub(crate) failed_targets: BTreeSet<usize>,
    /// Faults prescreened as ATPG-hopeless: never chosen as targets (they
    /// may still be caught fortuitously).
    pub(crate) never_target: BTreeSet<usize>,
    /// Faults proven redundant by the prescreen (excluded from tracking).
    pub(crate) prescreen_redundant: Vec<Fault>,
    /// Faults the prescreen PODEM aborted on.
    pub(crate) prescreen_aborted: Vec<Fault>,
    /// The baseline pattern set (run up front; needed for the ratios anyway
    /// and for the marginal-efficiency stop rule).
    pub(crate) baseline: tvs_atpg::PatternSet,
    /// The run's work budget (work units, never wall clock).
    pub(crate) budget: Budget,
    /// The strategy's persistent cursor (ADI counts, scheme genome, active
    /// bucket, …) — opaque to the engine, checkpointed verbatim.
    pub(crate) strategy_cursor: Vec<u64>,
    /// Current shift size.
    pub(crate) k: usize,
    /// Consecutive zero-catch cycles at the current shift size.
    pub(crate) stagnant: usize,
    /// Whether the last selection at the current shift size found nothing.
    pub(crate) select_failed: bool,
    /// Marginal-efficiency window: `(newly_caught, cycle_cost)` per cycle.
    pub(crate) window: VecDeque<(usize, f64)>,
    /// Set when the run must stop early (budget or worker panic).
    pub(crate) stop: Option<StopCause>,
    /// The prescreen's per-fault outcome, captured on cold and planned runs
    /// (absent on resume — the snapshot already holds the outcome).
    pub(crate) prescreen_trace: Option<PrescreenTrace>,
}

impl<'r, 'a> RunState<'r, 'a> {
    pub(crate) fn new(
        eng: &'r StitchEngine<'a>,
        cfg: &'r StitchConfig,
        plan: Option<&[Option<PrescreenRecord>]>,
    ) -> Result<Self, StitchError> {
        let scoap = Scoap::compute(eng.netlist, &eng.view);
        let baseline = generate_tests(eng.netlist, &cfg.baseline).map_err(|e| match e {
            tvs_atpg::AtpgOutcome::Netlist(err) => StitchError::Netlist(err),
        })?;
        let mut state = RunState {
            eng,
            cfg,
            pool: ThreadPool::new(cfg.threads),
            rng: Prng::seed_from_u64(cfg.seed),
            podem: Podem::with_config(eng.netlist, &eng.view, cfg.podem),
            session: SimSession::new(eng.netlist, &eng.view),
            scoap,
            sets: FaultSets::new(Vec::new()),
            good_image: BitVec::zeros(eng.chain.length()),
            cycles: Vec::new(),
            shifts: Vec::new(),
            failed_targets: BTreeSet::new(),
            never_target: BTreeSet::new(),
            prescreen_redundant: Vec::new(),
            prescreen_aborted: Vec::new(),
            baseline,
            budget: Budget::from_limit(cfg.budget),
            strategy_cursor: Vec::new(),
            k: 0,
            stagnant: 0,
            select_failed: false,
            window: VecDeque::new(),
            stop: None,
            prescreen_trace: None,
        };
        state.prescreen(plan)?;
        // Strategy cold start: the cursor (ADI counts, scheme genome, …) is
        // computed once against the freshly tracked fault sets, then the
        // strategy picks the opening shift size. Legacy strategies have an
        // empty prepare and delegate the shift to the policy, so their
        // PRNG/budget streams — and therefore their results — are unchanged.
        let strat = cfg.strategy.resolve();
        let cursor = strat.prepare(&mut state.strategy_ctx());
        state.strategy_cursor = cursor;
        state.k = strat.initial_shift(&mut state.strategy_ctx());
        Ok(state)
    }

    /// The borrowed context strategies see. Field borrows are disjoint, so
    /// the immutable circuit/fault views coexist with the mutable PRNG,
    /// budget and cursor streams.
    pub(crate) fn strategy_ctx(&mut self) -> StrategyCtx<'_> {
        StrategyCtx {
            netlist: self.eng.netlist,
            view: &self.eng.view,
            scoap: &self.scoap,
            sets: &self.sets,
            policy: &self.cfg.policy,
            seed: self.cfg.seed,
            scan_len: self.eng.chain.length(),
            k: self.k,
            rng: &mut self.rng,
            budget: &mut self.budget,
            cursor: &mut self.strategy_cursor,
        }
    }

    /// Asks the strategy for the next (strictly larger) shift size.
    pub(crate) fn escalate_shift(&mut self) -> Option<usize> {
        let strat = self.cfg.strategy.resolve();
        strat.escalate(&mut self.strategy_ctx())
    }

    /// Rebuilds a run's state from a checkpoint snapshot: validates that the
    /// snapshot belongs to this netlist and configuration, restores the
    /// fault sets (with every hidden image), the program so far, the PRNG
    /// stream and the budget cursor. The prescreen is skipped — its outcome
    /// (redundant/aborted verdicts and the PRNG draws it consumed) is
    /// already baked into the snapshot.
    pub(crate) fn resume(
        eng: &'r StitchEngine<'a>,
        cfg: &'r StitchConfig,
        snap: Snapshot,
    ) -> Result<Self, StitchError> {
        let mismatch = |what: String| StitchError::Snapshot(SnapshotError::Mismatch(what));
        if snap.circuit != eng.netlist.name() {
            return Err(mismatch(format!(
                "snapshot is for circuit {:?}, run is on {:?}",
                snap.circuit,
                eng.netlist.name()
            )));
        }
        if snap.gate_count != eng.netlist.gate_count() {
            return Err(mismatch(format!(
                "gate count {} vs {}",
                snap.gate_count,
                eng.netlist.gate_count()
            )));
        }
        let l = eng.chain.length();
        if snap.scan_len != l {
            return Err(mismatch(format!("scan length {} vs {l}", snap.scan_len)));
        }
        if snap.fault_count != eng.faults.len() {
            return Err(mismatch(format!(
                "collapsed fault count {} vs {}",
                snap.fault_count,
                eng.faults.len()
            )));
        }
        if snap.fault_entries.len() != snap.fault_count {
            return Err(mismatch(format!(
                "{} fault entries for {} faults",
                snap.fault_entries.len(),
                snap.fault_count
            )));
        }
        if snap.config_fingerprint != config_fingerprint(cfg) {
            return Err(mismatch(
                "configuration fingerprint differs (only threads/budget may change)".to_string(),
            ));
        }
        if snap.k == 0 || snap.k > l {
            return Err(mismatch(format!("shift size k={} out of range", snap.k)));
        }
        if snap.good_image.len() != l {
            return Err(mismatch(
                "good-image length differs from the chain".to_string(),
            ));
        }
        let p = eng.view.pi_count();
        for (i, c) in snap.cycles.iter().enumerate() {
            if c.shift == 0 || c.shift > l || c.vector.len() != p + l {
                return Err(mismatch(format!("cycle {i} is malformed")));
            }
        }

        let mut tracked = Vec::new();
        let mut state = Vec::new();
        let mut images = Vec::new();
        let mut prescreen_redundant = Vec::new();
        for (&fault, entry) in eng.faults.faults().iter().zip(&snap.fault_entries) {
            match entry {
                FaultEntry::Redundant => prescreen_redundant.push(fault),
                FaultEntry::Uncaught => {
                    tracked.push(fault);
                    state.push(FaultState::Uncaught);
                    images.push(None);
                }
                FaultEntry::Caught => {
                    tracked.push(fault);
                    state.push(FaultState::Caught);
                    images.push(None);
                }
                FaultEntry::Hidden(img) => {
                    if img.len() != l {
                        return Err(mismatch(
                            "hidden-fault image length differs from the chain".to_string(),
                        ));
                    }
                    tracked.push(fault);
                    state.push(FaultState::Hidden);
                    images.push(Some(img.clone()));
                }
            }
        }
        let tracked_len = tracked.len();
        let sets = FaultSets::restore(tracked, state, images, snap.transitions)
            .ok_or_else(|| mismatch("inconsistent fault-set state".to_string()))?;
        if snap
            .never_target
            .iter()
            .chain(&snap.failed_targets)
            .any(|&i| i >= tracked_len)
        {
            return Err(mismatch("target index out of range".to_string()));
        }
        let never_target: BTreeSet<usize> = snap.never_target.iter().copied().collect();
        let prescreen_aborted: Vec<Fault> = never_target.iter().map(|&i| sets.fault(i)).collect();

        // The baseline pattern set is deterministic given the config, so it
        // is recomputed rather than checkpointed.
        let baseline = generate_tests(eng.netlist, &cfg.baseline).map_err(|e| match e {
            tvs_atpg::AtpgOutcome::Netlist(err) => StitchError::Netlist(err),
        })?;
        let shifts = snap.cycles.iter().map(|c| c.shift).collect();
        Ok(RunState {
            eng,
            cfg,
            pool: ThreadPool::new(cfg.threads),
            rng: Prng::from_state(snap.rng),
            podem: Podem::with_config(eng.netlist, &eng.view, cfg.podem),
            session: SimSession::new(eng.netlist, &eng.view),
            scoap: Scoap::compute(eng.netlist, &eng.view),
            sets,
            good_image: snap.good_image,
            cycles: snap.cycles,
            shifts,
            failed_targets: snap.failed_targets.iter().copied().collect(),
            never_target,
            prescreen_redundant,
            prescreen_aborted,
            baseline,
            budget: Budget::with_spent(cfg.budget, snap.budget_spent),
            strategy_cursor: snap.strategy_cursor,
            k: snap.k,
            stagnant: snap.stagnant,
            select_failed: false,
            window: snap.window.iter().copied().collect(),
            stop: None,
            prescreen_trace: None,
        })
    }

    /// Captures a checkpoint at the current cycle boundary. Faults are
    /// recorded positionally against the collapsed list, so the snapshot
    /// needs no fault identities.
    pub(crate) fn snapshot(&self) -> Snapshot {
        let collapsed = self.eng.faults.faults();
        let mut fault_entries = Vec::with_capacity(collapsed.len());
        let (mut tracked_i, mut red_i) = (0usize, 0usize);
        for &fault in collapsed {
            if red_i < self.prescreen_redundant.len() && self.prescreen_redundant[red_i] == fault {
                fault_entries.push(FaultEntry::Redundant);
                red_i += 1;
            } else {
                fault_entries.push(match self.sets.state(tracked_i) {
                    FaultState::Uncaught => FaultEntry::Uncaught,
                    FaultState::Caught => FaultEntry::Caught,
                    FaultState::Hidden => FaultEntry::Hidden(
                        self.sets
                            .image(tracked_i)
                            .cloned()
                            .unwrap_or_else(BitVec::new),
                    ),
                });
                tracked_i += 1;
            }
        }
        Snapshot {
            circuit: self.eng.netlist.name().to_string(),
            gate_count: self.eng.netlist.gate_count(),
            scan_len: self.l(),
            fault_count: collapsed.len(),
            config_fingerprint: config_fingerprint(self.cfg),
            rng: self.rng.state(),
            budget_spent: self.budget.spent(),
            strategy_cursor: self.strategy_cursor.clone(),
            k: self.k,
            stagnant: self.stagnant,
            window: self.window.iter().copied().collect(),
            good_image: self.good_image.clone(),
            transitions: self.sets.transition_counts(),
            cycles: self.cycles.clone(),
            fault_entries,
            never_target: self.never_target.iter().copied().collect(),
            failed_targets: self.failed_targets.iter().copied().collect(),
        }
    }

    /// Memory cost of one `k`-bit cycle, for the efficiency window.
    pub(crate) fn cycle_cost(&self, k: usize) -> f64 {
        (2 * k + self.p() + self.q()) as f64
    }

    /// Whether the current shift size is spent: constrained selection found
    /// nothing, stagnation hit its limit, or the recent catches-per-
    /// memory-bit rate fell below the (discounted) baseline rate. Evaluated
    /// at the loop top from persisted state so a resumed run re-evaluates
    /// it identically.
    pub(crate) fn shift_exhausted(&self, baseline_rate: f64) -> bool {
        if self.select_failed || self.stagnant >= self.cfg.stagnation_limit {
            return true;
        }
        self.window.len() >= self.cfg.efficiency_window && {
            let catches: usize = self.window.iter().map(|&(c, _)| c).sum();
            let cost: f64 = self.window.iter().map(|&(_, c)| c).sum();
            (catches as f64 / cost) < baseline_rate * self.cfg.efficiency_margin
        }
    }

    /// The baseline flow's lifetime catches-per-memory-bit rate.
    pub(crate) fn baseline_rate(&self) -> f64 {
        let model = CostModel {
            scan_len: self.l(),
            pi_count: self.p(),
            po_count: self.q(),
        };
        let mem = model.full_costs(self.baseline.len().max(1)).memory_bits;
        self.sets.len() as f64 / mem as f64
    }

    /// Splits the collapsed list into tracked faults vs. proven-redundant
    /// ones (the paper starts `f_u` from "all the irredundant faults").
    /// Cheap testability witnesses come from random simulation; only the
    /// survivors get an unconstrained PODEM verdict. Aborted faults stay
    /// tracked (they can be caught fortuitously) but are never chosen as
    /// ATPG targets.
    ///
    /// With a replay `plan` (one optional [`PrescreenRecord`] per collapsed
    /// fault), planned faults take their per-round detection and PODEM
    /// verdicts from the record instead of recomputing them. Budget charges
    /// and PRNG draws are identical either way — the plan changes *where*
    /// verdicts come from, never what the prescreen does with them — so a
    /// planned run is byte-identical to a cold one whenever the records are
    /// accurate. A record missing its PODEM verdict where one is needed is
    /// demoted to live computation rather than trusted.
    fn prescreen(&mut self, plan: Option<&[Option<PrescreenRecord>]>) -> Result<(), StitchError> {
        // Chaos hook: a worker dying this early leaves no program to
        // salvage, so the whole run reports a typed error.
        if inject::fire("stitch.prescreen.panic") {
            return Err(StitchError::WorkerPanic {
                message: inject::panic_message("stitch.prescreen.panic"),
            });
        }
        let faults = self.eng.faults.faults();
        // A plan of the wrong length cannot describe this fault list.
        let plan = plan.filter(|p| p.len() == faults.len());
        let planned = |i: usize| plan.and_then(|p| p[i]);
        let mut records: Vec<PrescreenRecord> = vec![PrescreenRecord::default(); faults.len()];
        let mut testable = vec![false; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        for round in 0..8u8 {
            if alive.is_empty() {
                break;
            }
            let pattern: BitVec = (0..self.eng.view.input_count())
                .map(|_| self.rng.next_bool())
                .collect();
            self.budget.charge(alive.len() as u64);
            // Planned faults replay their recorded detection round; the
            // rest are simulated. The simulated subset keeps alive order,
            // so a plan-free call builds exactly the cold subset.
            let mut hit = vec![false; alive.len()];
            let mut live_slots: Vec<usize> = Vec::new();
            for (slot, &i) in alive.iter().enumerate() {
                match planned(i) {
                    Some(rec) => hit[slot] = rec.first_detect_round == Some(round),
                    None => live_slots.push(slot),
                }
            }
            if !live_slots.is_empty() {
                let subset: Vec<Fault> = live_slots.iter().map(|&s| faults[alive[s]]).collect();
                let hits = detect_parallel(
                    self.eng.netlist,
                    &self.eng.view,
                    &self.pool,
                    &pattern,
                    &subset,
                );
                for (&slot, h) in live_slots.iter().zip(hits) {
                    hit[slot] = h;
                }
            }
            alive = alive
                .into_iter()
                .zip(hit)
                .filter_map(|(i, h)| {
                    if h {
                        testable[i] = true;
                        records[i].first_detect_round = Some(round);
                        None
                    } else {
                        Some(i)
                    }
                })
                .collect();
        }
        let free = Cube::unspecified(self.eng.view.input_count());
        let mut tracked: Vec<Fault> = Vec::with_capacity(faults.len());
        // Redundancy proofs are worth extra effort: an abort here silently
        // costs coverage, so the prescreen gets a much deeper backtrack
        // budget than per-cycle constrained generation.
        let deep = PodemConfig {
            backtrack_limit: self.cfg.podem.backtrack_limit.saturating_mul(8),
            ..self.cfg.podem
        };
        // Verdicts are independent per fault, so the deep PODEM runs fan out
        // over the pool in fixed 32-fault chunks (one prover per chunk) and
        // merge back in fault-index order — bit-identical at any thread
        // count.
        // Structurally unobservable faults are untestable by construction
        // (no path to any observation point), so they skip the PODEM proof
        // entirely and classify as redundant — the same verdict the prover
        // would reach, but pattern- and budget-independent, hence identical
        // in every run path.
        let prune = StaticPrune::new(self.eng.netlist);
        let needs: Vec<(usize, Fault)> = faults
            .iter()
            .enumerate()
            .filter(|&(i, f)| !testable[i] && !prune.is_untestable(f))
            .map(|(i, &f)| (i, f))
            .collect();
        // Planned faults carry their verdict; the rest go to the pool. A
        // planned fault without a recorded verdict is a plan inconsistency:
        // it is demoted to live computation, never guessed.
        let mut verdict_at: Vec<Option<(PodemVerdict, u32)>> = vec![None; needs.len()];
        let mut demoted = 0usize;
        let mut live: Vec<Fault> = Vec::new();
        let mut live_at: Vec<usize> = Vec::new();
        for (slot, &(i, fault)) in needs.iter().enumerate() {
            match planned(i).and_then(|rec| rec.podem) {
                Some(verdict) => verdict_at[slot] = Some(verdict),
                None => {
                    if planned(i).is_some() {
                        demoted += 1;
                    }
                    live.push(fault);
                    live_at.push(slot);
                }
            }
        }
        let chunks: Vec<&[Fault]> = live.chunks(32).collect();
        let (netlist, view) = (self.eng.netlist, &self.eng.view);
        // Each verdict comes back with its backtrack count so the budget
        // charge reduces on the caller side, in fault order — deterministic
        // at any thread count.
        let live_verdicts: Vec<(PodemResult, u32)> = self
            .pool
            .try_map(&chunks, |_, chunk| {
                let mut prover = Podem::with_config(netlist, view, deep);
                chunk
                    .iter()
                    .map(|&fault| {
                        let verdict = prover.generate(fault, &free);
                        (verdict, prover.last_backtracks())
                    })
                    .collect::<Vec<(PodemResult, u32)>>()
            })
            .map_err(|panic| StitchError::WorkerPanic {
                message: panic.message,
            })?
            .into_iter()
            .flatten()
            .collect();
        for (&slot, (result, backtracks)) in live_at.iter().zip(live_verdicts) {
            let kind = match result {
                PodemResult::Test(_) => PodemVerdict::Test,
                PodemResult::Untestable => PodemVerdict::Untestable,
                PodemResult::Aborted => PodemVerdict::Aborted,
            };
            verdict_at[slot] = Some((kind, backtracks));
        }
        let mut verdicts = verdict_at.into_iter();
        for (i, &fault) in faults.iter().enumerate() {
            if testable[i] {
                tracked.push(fault);
                continue;
            }
            if prune.is_untestable(&fault) {
                self.prescreen_redundant.push(fault);
                continue;
            }
            // Defensive: one verdict per screened fault; a short stream is
            // treated as an abort rather than an invariant crash.
            let (verdict, backtracks) = verdicts
                .next()
                .flatten()
                .unwrap_or((PodemVerdict::Aborted, 0));
            records[i].podem = Some((verdict, backtracks));
            self.budget.charge(1 + u64::from(backtracks));
            match verdict {
                PodemVerdict::Test => tracked.push(fault),
                PodemVerdict::Untestable => self.prescreen_redundant.push(fault),
                PodemVerdict::Aborted => {
                    self.prescreen_aborted.push(fault);
                    self.never_target.insert(tracked.len());
                    tracked.push(fault);
                }
            }
        }
        let reused = plan
            .map(|p| p.iter().filter(|r| r.is_some()).count() - demoted)
            .unwrap_or(0);
        self.prescreen_trace = Some(PrescreenTrace { records, reused });
        self.sets = FaultSets::new(tracked);
        Ok(())
    }

    /// Session-backed fault detection under a shared stimulus. The engine
    /// only ever builds view-width stimuli, so the session's typed length
    /// error is structurally impossible here.
    pub(crate) fn detect(&mut self, stimulus: &BitVec, faults: &[Fault]) -> Vec<bool> {
        match self.session.detect(stimulus, faults) {
            Ok(hits) => hits,
            Err(_) => unreachable!("engine stimuli always match the scan view"),
        }
    }

    pub(crate) fn p(&self) -> usize {
        self.eng.view.pi_count()
    }

    pub(crate) fn q(&self) -> usize {
        self.eng.view.po_count()
    }

    pub(crate) fn l(&self) -> usize {
        self.eng.chain.length()
    }
}
