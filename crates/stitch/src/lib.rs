//! **Test vector stitching** — the primary contribution of
//! W. Rao & A. Orailoglu, *"Virtual Compression through Test Vector Stitching
//! for Scan Based Designs"*, DATE 2003 — implemented as a library.
//!
//! Stitched test generation constructs each test vector out of the tail of
//! the previous response still sitting in the scan chain plus `k` freshly
//! shifted bits, cutting test application time and tester memory with zero
//! added hardware. The engine tracks three disjoint fault sets per cycle:
//!
//! * `f_c` — caught faults;
//! * `f_h` — hidden faults: detected, but every differentiating response bit
//!   stayed inside the chain; each carries its own faulty chain image and is
//!   re-simulated under its *own* mutated next vector;
//! * `f_u` — not yet differentiated faults.
//!
//! The per-cycle classification implements the three-way rule of the paper's
//! §5 exactly; when constrained ATPG can no longer catch new faults the
//! engine falls back to conventional full-shift vectors for the remainder.
//!
//! Entry point: [`StitchEngine`] configured by [`StitchConfig`] (shift
//! policy, vector-selection strategy, XOR observability scheme), producing a
//! [`StitchReport`] with the paper's `TV`, `ex`, `m`, `t` metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod config;
mod cycle;
mod engine;
mod metrics;
mod policy;
mod replay;
mod run;
mod select;
mod sets;
mod snapshot;
mod state;
mod strategy;
mod vector;

pub use classify::Classification;
pub use config::StitchConfig;
pub use engine::StitchEngine;
pub use metrics::{CompressionMetrics, CycleRecord};
pub use policy::{Ratio, ShiftPolicy};
pub use replay::{ReplayCycle, ReplayRow, ReplayTrace};
pub use run::{
    PodemVerdict, PrescreenRecord, PrescreenTrace, RunOptions, RunProgress, StitchError,
    StitchReport, Termination,
};
pub use select::SelectionStrategy;
pub use sets::{FaultSets, FaultState, HiddenFault};
pub use snapshot::{fnv1a, FaultEntry, Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use strategy::{Strategy, StrategyCtx, StrategyId, ALL_STRATEGIES};
