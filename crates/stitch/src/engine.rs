//! The stitched test generation engine (the paper's Fig. 2 flow).

use std::collections::{BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

use tvs_exec::{inject, Budget, TaskPanic, ThreadPool};
use tvs_logic::{BitVec, Cube, Logic, Prng};
use tvs_netlist::{Netlist, NetlistError, ScanView};

use tvs_atpg::{generate_tests, AtpgConfig, Podem, PodemConfig, PodemResult};
use tvs_fault::{detect_parallel, Fault, FaultList, FaultSim, Scoap, SlotSpec};
use tvs_scan::{CaptureTransform, CostModel, ObserveTransform, ScanChain};

use crate::snapshot::{fnv1a, FaultEntry, Snapshot, SnapshotError};
use crate::{
    Classification, CompressionMetrics, CycleRecord, FaultSets, FaultState, SelectionStrategy,
    ShiftPolicy,
};

/// Configuration of a stitched test generation run.
#[derive(Debug, Clone)]
pub struct StitchConfig {
    /// Shift-size policy (paper §6.1).
    pub policy: ShiftPolicy,
    /// Vector-selection strategy (paper §6.3).
    pub selection: SelectionStrategy,
    /// Capture transform (paper §6.2, VXOR).
    pub capture: CaptureTransform,
    /// Observation transform (paper §6.2, HXOR).
    pub observe: ObserveTransform,
    /// Seed for everything random (fill, random ordering).
    pub seed: u64,
    /// PODEM settings for constrained generation.
    pub podem: PodemConfig,
    /// Upper bound on constrained-ATPG attempts per cycle (failures are
    /// cached per shift size, so the engine normally scans the whole of
    /// `f_u` before declaring a shift size exhausted).
    pub max_targets_per_cycle: usize,
    /// How many candidate vectors the greedy strategies score per cycle.
    pub candidates: usize,
    /// Absolute cap on stitched cycles (safety valve).
    pub max_cycles: usize,
    /// Consecutive zero-catch cycles tolerated before the current shift
    /// size is treated as exhausted.
    pub stagnation_limit: usize,
    /// Window (in cycles) for the marginal-efficiency check: when the
    /// recent catches-per-memory-bit rate falls below the baseline flow's
    /// overall rate times [`efficiency_margin`](Self::efficiency_margin),
    /// the current shift size is treated as exhausted — the compacted
    /// fallback is the cheaper tool past that point.
    pub efficiency_window: usize,
    /// Discount on the baseline rate used by the marginal-efficiency check;
    /// below 1 because the fallback's *marginal* productivity on the
    /// leftover hard faults is well below the baseline's average.
    pub efficiency_margin: f64,
    /// Baseline ATPG settings (the `aTV` reference run).
    pub baseline: AtpgConfig,
    /// Optional work budget in deterministic work units (PODEM backtracks,
    /// simulation slots, stitch cycles — never wall clock, which would break
    /// determinism). Checked at stage boundaries; an exhausted budget ends
    /// the run early with a valid partial program and
    /// [`Termination::BudgetExhausted`] carrying the residual `f_u`.
    pub budget: Option<u64>,
    /// Worker threads for the parallelizable stages (prescreen verdicts,
    /// candidate scoring, classification sweeps). `1` (the default) runs
    /// everything on the calling thread; any value produces bit-identical
    /// results — parallel stages reduce in input order (DESIGN.md §6.4).
    pub threads: usize,
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            policy: ShiftPolicy::default(),
            selection: SelectionStrategy::default(),
            capture: CaptureTransform::default(),
            observe: ObserveTransform::default(),
            seed: 0x5717C4,
            podem: PodemConfig::default(),
            max_targets_per_cycle: 192,
            candidates: 8,
            max_cycles: 4096,
            stagnation_limit: 6,
            efficiency_window: 6,
            efficiency_margin: 0.5,
            baseline: AtpgConfig::default(),
            budget: None,
            threads: 1,
        }
    }
}

/// Errors from the stitching engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum StitchError {
    /// The circuit has no flip-flops — nothing to stitch through.
    NoScanChain,
    /// The netlist could not be levelized.
    Netlist(NetlistError),
    /// A replayed vector's pinned bits disagree with the previous response.
    ReplayMismatch {
        /// 0-based cycle index of the offending vector.
        cycle: usize,
    },
    /// A pool worker panicked before any program existed (prescreen), so
    /// there is nothing to salvage. Mid-run panics instead end the run with
    /// [`Termination::WorkerPanic`] and a partial program.
    WorkerPanic {
        /// Stringified panic payload of the failed work item.
        message: String,
    },
    /// A resume snapshot was rejected.
    Snapshot(SnapshotError),
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::NoScanChain => write!(f, "circuit has no scan chain"),
            StitchError::Netlist(e) => write!(f, "netlist error: {e}"),
            StitchError::ReplayMismatch { cycle } => write!(
                f,
                "replayed vector {cycle} conflicts with the retained response bits"
            ),
            StitchError::WorkerPanic { message } => {
                write!(f, "worker panicked during the prescreen: {message}")
            }
            StitchError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl Error for StitchError {}

impl From<NetlistError> for StitchError {
    fn from(e: NetlistError) -> Self {
        StitchError::Netlist(e)
    }
}

impl From<SnapshotError> for StitchError {
    fn from(e: SnapshotError) -> Self {
        StitchError::Snapshot(e)
    }
}

/// How a stitched run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Termination {
    /// The flow ran to its natural end, fallback phase included.
    Complete,
    /// The work budget ran out at a stage boundary. The report's cycles and
    /// extra vectors form a valid (lint-clean) partial program.
    BudgetExhausted {
        /// Faults still in `f_u` when the run stopped.
        residual: Vec<Fault>,
    },
    /// A worker panicked mid-run. The cycles recorded before the failed
    /// stage form a valid partial program; the panic payload is preserved.
    WorkerPanic {
        /// Stringified panic payload of the lowest-index failed work item
        /// (deterministic at any thread count).
        message: String,
        /// Faults still in `f_u` when the run stopped.
        residual: Vec<Fault>,
    },
}

/// Resume/checkpoint options for [`StitchEngine::run_with`].
#[derive(Default)]
pub struct RunOptions<'cb> {
    /// Resume from a previously captured snapshot instead of starting
    /// fresh (the prescreen is skipped; its outcome is in the snapshot).
    pub resume: Option<Snapshot>,
    /// Emit a checkpoint every this many applied cycles (`0` = never).
    pub checkpoint_every: usize,
    /// Receives each emitted checkpoint; the caller persists it.
    pub on_checkpoint: Option<&'cb mut dyn FnMut(Snapshot)>,
}

/// Why a run stopped before its natural end.
enum StopCause {
    Budget,
    Worker(TaskPanic),
}

/// Fingerprint of the semantic configuration fields, for snapshot
/// compatibility checks: everything that shapes the result stream except
/// `threads` (results are thread-count independent by construction) and
/// `budget` (a resumed run may receive a fresh allowance).
fn config_fingerprint(cfg: &StitchConfig) -> u64 {
    let text = format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{:?}|{}|{}|{}|{}|{}|{:016x}|{:?}",
        cfg.policy,
        cfg.selection,
        cfg.capture,
        cfg.observe,
        cfg.seed,
        cfg.podem,
        cfg.max_targets_per_cycle,
        cfg.candidates,
        cfg.max_cycles,
        cfg.stagnation_limit,
        cfg.efficiency_window,
        cfg.efficiency_margin.to_bits(),
        cfg.baseline,
    );
    fnv1a(text.as_bytes())
}

/// The full outcome of a stitched run.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchReport {
    /// Per-cycle records (first entry is the initial full shift-in).
    pub cycles: Vec<CycleRecord>,
    /// The shift sizes, `cycles[i].shift` collected for cost accounting.
    pub shifts: Vec<usize>,
    /// The closing flush length the engine decided on.
    pub final_flush: usize,
    /// Fallback full-shift vectors appended at the end.
    pub extra_vectors: Vec<BitVec>,
    /// Faults proven redundant (by unconstrained ATPG in the fallback).
    pub redundant: Vec<Fault>,
    /// Faults the fallback ATPG aborted on.
    pub aborted: Vec<Fault>,
    /// The headline `TV / ex / m / t` numbers.
    pub metrics: CompressionMetrics,
    /// Hidden-fault lifecycle counters `(entered, converted to caught,
    /// erased back to uncaught)` — the dynamics of the paper's §6.2.
    pub hidden_transitions: (usize, usize, usize),
    /// How the run ended: complete, out of budget, or a worker panic —
    /// the latter two still salvage a valid partial program.
    pub termination: Termination,
}

/// One cycle of a [`replay`](StitchEngine::replay): the fault-free vector
/// and response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCycle {
    /// The intended (fault-free) stimulus, PIs then chain cells.
    pub vector: BitVec,
    /// The fault-free outputs, POs then captured chain cells.
    pub response: BitVec,
}

/// One fault's row in a [`ReplayTrace`] — the paper's Table 1 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRow {
    /// The fault.
    pub fault: Fault,
    /// Per cycle (until caught): the stimulus this faulty machine actually
    /// received and the response it produced.
    pub entries: Vec<ReplayCycle>,
    /// The 0-based cycle at which the fault's effect reached the tester,
    /// `None` if it never did (redundant or unlucky).
    pub caught_at: Option<usize>,
}

/// The outcome of replaying a fixed vector schedule (reproduces Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayTrace {
    /// Fault-free behaviour per cycle.
    pub cycles: Vec<ReplayCycle>,
    /// One row per tracked fault.
    pub rows: Vec<ReplayRow>,
}

/// The stitched test generation engine.
///
/// # Examples
///
/// ```
/// use tvs_netlist::{GateKind, NetlistBuilder};
/// use tvs_stitch::{StitchConfig, StitchEngine};
///
/// // The paper's Figure 1 circuit.
/// let mut b = NetlistBuilder::new("fig1");
/// b.add_dff("a", "F")?;
/// b.add_dff("b", "E")?;
/// b.add_dff("c", "D")?;
/// b.add_gate("D", GateKind::And, &["a", "b"])?;
/// b.add_gate("E", GateKind::Or, &["b", "c"])?;
/// b.add_gate("F", GateKind::And, &["D", "E"])?;
/// let netlist = b.build()?;
///
/// let engine = StitchEngine::new(&netlist)?;
/// let report = engine.run(&StitchConfig::default())?;
/// assert!(report.metrics.fault_coverage >= 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StitchEngine<'a> {
    netlist: &'a Netlist,
    view: ScanView,
    chain: ScanChain,
    faults: FaultList,
}

impl<'a> StitchEngine<'a> {
    /// Prepares an engine for a netlist: builds the scan view and the
    /// collapsed fault list.
    ///
    /// # Errors
    ///
    /// [`StitchError::NoScanChain`] for purely combinational circuits,
    /// [`StitchError::Netlist`] if levelization fails.
    pub fn new(netlist: &'a Netlist) -> Result<Self, StitchError> {
        tvs_lint::debug_assert_netlist_clean(netlist, "stitch::StitchEngine::new");
        if netlist.dff_count() == 0 {
            return Err(StitchError::NoScanChain);
        }
        let view = netlist.scan_view()?;
        Ok(StitchEngine {
            netlist,
            view,
            chain: ScanChain::new(netlist.dff_count()),
            faults: FaultList::collapsed(netlist),
        })
    }

    /// The scan view the engine operates on.
    pub fn view(&self) -> &ScanView {
        &self.view
    }

    /// The collapsed fault list the engine tracks.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// Runs stitched test generation end to end and reports the paper's
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors from the baseline ATPG run.
    pub fn run(&self, config: &StitchConfig) -> Result<StitchReport, StitchError> {
        self.run_with(config, RunOptions::default())
    }

    /// Runs stitched test generation with resume/checkpoint control.
    ///
    /// A run resumed from a snapshot emitted by `opts.on_checkpoint` is
    /// **bit-identical** to one that never stopped, at any thread count:
    /// snapshots capture state (fault sets, program, PRNG, budget cursor),
    /// never timing.
    ///
    /// # Errors
    ///
    /// [`StitchError::Snapshot`] when `opts.resume` belongs to a different
    /// netlist or configuration, [`StitchError::WorkerPanic`] when a worker
    /// dies before any program exists (prescreen), plus the [`run`] errors.
    ///
    /// [`run`]: Self::run
    pub fn run_with(
        &self,
        config: &StitchConfig,
        mut opts: RunOptions<'_>,
    ) -> Result<StitchReport, StitchError> {
        let _timer = tvs_exec::span("stitch.run");
        let mut run = match opts.resume.take() {
            Some(snapshot) => RunState::resume(self, config, snapshot)?,
            None => RunState::new(self, config)?,
        };
        let l = self.chain.length();
        let baseline_rate = run.baseline_rate();

        // Cycle 1: a conventional full shift-in, but chosen by the same
        // selection machinery (constraint-free). Skipped on resume — the
        // snapshot already contains it.
        if run.cycles.is_empty() && run.sets.uncaught_count() > 0 && !run.budget.exhausted() {
            match run.select_vector(l, true) {
                Ok(Some(vector)) => {
                    if let Err(panic) = run.apply_cycle(l, &vector, true) {
                        run.stop = Some(StopCause::Worker(panic));
                    }
                }
                Ok(None) => {}
                Err(panic) => run.stop = Some(StopCause::Worker(panic)),
            }
        }

        // A stitched cycle can only ride on a loaded chain: if the opening
        // full shift-in could not be selected at all (e.g. a PODEM abort
        // storm), skip the stitched phase and leave everything to the
        // fallback so `shifts[0] == L` holds for every emitted program.
        while run.stop.is_none()
            && !run.cycles.is_empty()
            && run.sets.uncaught_count() > 0
            && run.cycles.len() < config.max_cycles
        {
            // Stage boundary: the budget is only ever checked here, so a
            // stage that crosses the line completes before the run stops.
            if run.budget.exhausted() {
                run.stop = Some(StopCause::Budget);
                break;
            }
            if run.shift_exhausted(baseline_rate) {
                if std::env::var_os("TVS_DEBUG").is_some() {
                    eprintln!(
                        "[tvs] escalate from k={}: cycles={} caught={} hidden={} uncaught={}",
                        run.k,
                        run.cycles.len(),
                        run.sets.caught_count(),
                        run.sets.hidden_count(),
                        run.sets.uncaught_count()
                    );
                }
                match config.policy.escalate(l, run.k) {
                    Some(next) => {
                        run.k = next;
                        run.stagnant = 0;
                        run.select_failed = false;
                        run.window.clear();
                        run.failed_targets.clear();
                    }
                    None => break,
                }
            }
            let k = run.k;
            match run.select_vector(k, false) {
                Ok(Some(vector)) => {
                    if let Err(panic) = run.apply_cycle(k, &vector, false) {
                        run.stop = Some(StopCause::Worker(panic));
                        break;
                    }
                    let caught = run.cycles.last().map(|c| c.newly_caught).unwrap_or(0);
                    if caught == 0 {
                        run.stagnant += 1;
                    } else {
                        run.stagnant = 0;
                    }
                    run.window.push_back((caught, run.cycle_cost(k)));
                    if run.window.len() > config.efficiency_window {
                        run.window.pop_front();
                    }
                    if opts.checkpoint_every > 0 && run.cycles.len() % opts.checkpoint_every == 0 {
                        if let Some(cb) = opts.on_checkpoint.as_mut() {
                            cb(run.snapshot());
                        }
                    }
                }
                Ok(None) => run.select_failed = true,
                Err(panic) => {
                    run.stop = Some(StopCause::Worker(panic));
                    break;
                }
            }
        }

        run.finish()
    }

    /// Replays a fixed schedule of vectors (reproducing the paper's
    /// Table 1): every collapsed fault is tracked through each cycle until
    /// its effect reaches the tester.
    ///
    /// `vectors[i]` is the full intended stimulus (PIs then chain cells) of
    /// cycle `i`; `shifts[i]` the bits shifted before applying it
    /// (`shifts[0]` must equal the scan length); `final_flush` the closing
    /// observation shift.
    ///
    /// # Errors
    ///
    /// [`StitchError::ReplayMismatch`] if a vector's retained chain bits do
    /// not equal the shifted previous response — such a schedule is
    /// physically impossible to apply.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` and `shifts` have different lengths or a vector
    /// has the wrong width.
    pub fn replay(
        &self,
        vectors: &[BitVec],
        shifts: &[usize],
        final_flush: usize,
        config: &StitchConfig,
    ) -> Result<ReplayTrace, StitchError> {
        assert_eq!(vectors.len(), shifts.len(), "one shift size per vector");
        assert!(!vectors.is_empty(), "at least one vector");
        assert_eq!(
            shifts[0],
            self.chain.length(),
            "first vector is a full shift"
        );
        let p = self.view.pi_count();
        let l = self.chain.length();
        let q = self.view.po_count();
        for v in vectors {
            assert_eq!(v.len(), p + l, "vector width must be PIs + scan cells");
        }

        let mut fsim = FaultSim::new(self.netlist, &self.view);
        let n_faults = self.faults.len();

        // Good machine first: validate the schedule and precompute images.
        let mut good_cycles: Vec<ReplayCycle> = Vec::new();
        let mut good_images: Vec<BitVec> = Vec::new();
        let mut image = BitVec::zeros(l);
        for (i, vector) in vectors.iter().enumerate() {
            let chain_tv = slice_bits(vector, p..p + l);
            if i > 0 {
                // Pinned consistency: retained cells must match the shifted
                // previous image.
                let k = shifts[i];
                let shifted =
                    self.chain
                        .shift(&image, &incoming_from_tv(&chain_tv, k), config.observe);
                if slice_bits(&shifted.new_image, k..l) != slice_bits(&chain_tv, k..l) {
                    return Err(StitchError::ReplayMismatch { cycle: i });
                }
            }
            let out = fsim.good_outputs(vector);
            let resp = slice_bits(&out, q..q + l);
            image = config.capture.capture(&chain_tv, &resp);
            good_cycles.push(ReplayCycle {
                vector: vector.clone(),
                response: out,
            });
            good_images.push(image.clone());
        }

        // Per-fault tracking with one chain image each.
        let mut rows: Vec<ReplayRow> = self
            .faults
            .iter()
            .map(|&fault| ReplayRow {
                fault,
                entries: Vec::new(),
                caught_at: None,
            })
            .collect();
        let mut images: Vec<BitVec> = vec![BitVec::zeros(l); n_faults];

        for (i, vector) in vectors.iter().enumerate() {
            let k = shifts[i];
            let alive: Vec<usize> = (0..n_faults)
                .filter(|&f| rows[f].caught_at.is_none())
                .collect();
            if alive.is_empty() {
                break;
            }
            // Derive each alive fault's stimulus by shifting its own image.
            let mut stimuli: Vec<BitVec> = Vec::with_capacity(alive.len());
            let mut shift_caught: Vec<bool> = Vec::with_capacity(alive.len());
            let good_chain_tv = slice_bits(vector, p..p + l);
            let incoming = incoming_from_tv(&good_chain_tv, k);
            for &f in &alive {
                if i == 0 {
                    stimuli.push(vector.clone());
                    shift_caught.push(false);
                } else {
                    let good_prev = &good_images[i - 1];
                    let sh_good = self.chain.shift(good_prev, &incoming, config.observe);
                    let sh_f = self.chain.shift(&images[f], &incoming, config.observe);
                    shift_caught.push(sh_f.observed != sh_good.observed);
                    let mut stim = slice_bits(vector, 0..p);
                    stim.extend(sh_f.new_image.iter());
                    stimuli.push(stim);
                }
            }
            // Simulate all alive faulty machines under their own stimuli.
            let mut outs: Vec<BitVec> = Vec::with_capacity(alive.len());
            for batch_start in (0..alive.len()).step_by(64) {
                let end = (batch_start + 64).min(alive.len());
                let slots: Vec<SlotSpec<'_>> = (batch_start..end)
                    .map(|j| SlotSpec {
                        stimulus: &stimuli[j],
                        fault: Some(self.faults.faults()[alive[j]]),
                    })
                    .collect();
                outs.extend(fsim.run_slots(&slots));
            }
            let good_out = &good_cycles[i].response;
            for (j, &f) in alive.iter().enumerate() {
                let out = &outs[j];
                let chain_stim = slice_bits(&stimuli[j], p..p + l);
                let resp = slice_bits(out, q..q + l);
                images[f] = config.capture.capture(&chain_stim, &resp);
                rows[f].entries.push(ReplayCycle {
                    vector: stimuli[j].clone(),
                    response: out.clone(),
                });
                // Caught this cycle if the shift revealed an older effect,
                // the POs differ now, or the captured image difference will
                // be shifted out next cycle (exact lookahead, including the
                // closing flush).
                let po_differs = slice_bits(out, 0..q) != slice_bits(good_out, 0..q);
                let next_k = if i + 1 < shifts.len() {
                    shifts[i + 1]
                } else {
                    final_flush
                };
                let next_incoming = if i + 1 < vectors.len() {
                    incoming_from_tv(&slice_bits(&vectors[i + 1], p..p + l), next_k)
                } else {
                    BitVec::zeros(next_k)
                };
                let sh_good_next =
                    self.chain
                        .shift(&good_images[i], &next_incoming, config.observe);
                let sh_f_next = self.chain.shift(&images[f], &next_incoming, config.observe);
                let observed_next = sh_f_next.observed != sh_good_next.observed;
                if shift_caught[j] || po_differs || observed_next {
                    rows[f].caught_at = Some(i);
                }
            }
        }

        Ok(ReplayTrace {
            cycles: good_cycles,
            rows,
        })
    }
}

/// Mutable state of one `run` invocation.
struct RunState<'r, 'a> {
    eng: &'r StitchEngine<'a>,
    cfg: &'r StitchConfig,
    pool: ThreadPool,
    rng: Prng,
    podem: Podem<'r>,
    fsim: FaultSim<'r>,
    scoap: Scoap,
    sets: FaultSets,
    good_image: BitVec,
    cycles: Vec<CycleRecord>,
    shifts: Vec<usize>,
    /// Targets that failed constrained ATPG at the current shift size.
    failed_targets: BTreeSet<usize>,
    /// Faults prescreened as ATPG-hopeless: never chosen as targets (they
    /// may still be caught fortuitously).
    never_target: BTreeSet<usize>,
    /// Faults proven redundant by the prescreen (excluded from tracking).
    prescreen_redundant: Vec<Fault>,
    /// Faults the prescreen PODEM aborted on.
    prescreen_aborted: Vec<Fault>,
    /// The baseline pattern set (run up front; needed for the ratios anyway
    /// and for the marginal-efficiency stop rule).
    baseline: tvs_atpg::PatternSet,
    /// The run's work budget (work units, never wall clock).
    budget: Budget,
    /// Current shift size.
    k: usize,
    /// Consecutive zero-catch cycles at the current shift size.
    stagnant: usize,
    /// Whether the last selection at the current shift size found nothing.
    select_failed: bool,
    /// Marginal-efficiency window: `(newly_caught, cycle_cost)` per cycle.
    window: VecDeque<(usize, f64)>,
    /// Set when the run must stop early (budget or worker panic).
    stop: Option<StopCause>,
}

impl<'r, 'a> RunState<'r, 'a> {
    fn new(eng: &'r StitchEngine<'a>, cfg: &'r StitchConfig) -> Result<Self, StitchError> {
        let scoap = Scoap::compute(eng.netlist, &eng.view);
        let baseline = generate_tests(eng.netlist, &cfg.baseline).map_err(|e| match e {
            tvs_atpg::AtpgOutcome::Netlist(err) => StitchError::Netlist(err),
        })?;
        let mut state = RunState {
            eng,
            cfg,
            pool: ThreadPool::new(cfg.threads),
            rng: Prng::seed_from_u64(cfg.seed),
            podem: Podem::with_config(eng.netlist, &eng.view, cfg.podem),
            fsim: FaultSim::new(eng.netlist, &eng.view),
            scoap,
            sets: FaultSets::new(Vec::new()),
            good_image: BitVec::zeros(eng.chain.length()),
            cycles: Vec::new(),
            shifts: Vec::new(),
            failed_targets: BTreeSet::new(),
            never_target: BTreeSet::new(),
            prescreen_redundant: Vec::new(),
            prescreen_aborted: Vec::new(),
            baseline,
            budget: Budget::from_limit(cfg.budget),
            k: cfg.policy.initial(eng.chain.length()),
            stagnant: 0,
            select_failed: false,
            window: VecDeque::new(),
            stop: None,
        };
        state.prescreen()?;
        Ok(state)
    }

    /// Rebuilds a run's state from a checkpoint snapshot: validates that the
    /// snapshot belongs to this netlist and configuration, restores the
    /// fault sets (with every hidden image), the program so far, the PRNG
    /// stream and the budget cursor. The prescreen is skipped — its outcome
    /// (redundant/aborted verdicts and the PRNG draws it consumed) is
    /// already baked into the snapshot.
    fn resume(
        eng: &'r StitchEngine<'a>,
        cfg: &'r StitchConfig,
        snap: Snapshot,
    ) -> Result<Self, StitchError> {
        let mismatch = |what: String| StitchError::Snapshot(SnapshotError::Mismatch(what));
        if snap.circuit != eng.netlist.name() {
            return Err(mismatch(format!(
                "snapshot is for circuit {:?}, run is on {:?}",
                snap.circuit,
                eng.netlist.name()
            )));
        }
        if snap.gate_count != eng.netlist.gate_count() {
            return Err(mismatch(format!(
                "gate count {} vs {}",
                snap.gate_count,
                eng.netlist.gate_count()
            )));
        }
        let l = eng.chain.length();
        if snap.scan_len != l {
            return Err(mismatch(format!("scan length {} vs {l}", snap.scan_len)));
        }
        if snap.fault_count != eng.faults.len() {
            return Err(mismatch(format!(
                "collapsed fault count {} vs {}",
                snap.fault_count,
                eng.faults.len()
            )));
        }
        if snap.fault_entries.len() != snap.fault_count {
            return Err(mismatch(format!(
                "{} fault entries for {} faults",
                snap.fault_entries.len(),
                snap.fault_count
            )));
        }
        if snap.config_fingerprint != config_fingerprint(cfg) {
            return Err(mismatch(
                "configuration fingerprint differs (only threads/budget may change)".to_string(),
            ));
        }
        if snap.k == 0 || snap.k > l {
            return Err(mismatch(format!("shift size k={} out of range", snap.k)));
        }
        if snap.good_image.len() != l {
            return Err(mismatch(
                "good-image length differs from the chain".to_string(),
            ));
        }
        let p = eng.view.pi_count();
        for (i, c) in snap.cycles.iter().enumerate() {
            if c.shift == 0 || c.shift > l || c.vector.len() != p + l {
                return Err(mismatch(format!("cycle {i} is malformed")));
            }
        }

        let mut tracked = Vec::new();
        let mut state = Vec::new();
        let mut images = Vec::new();
        let mut prescreen_redundant = Vec::new();
        for (&fault, entry) in eng.faults.faults().iter().zip(&snap.fault_entries) {
            match entry {
                FaultEntry::Redundant => prescreen_redundant.push(fault),
                FaultEntry::Uncaught => {
                    tracked.push(fault);
                    state.push(FaultState::Uncaught);
                    images.push(None);
                }
                FaultEntry::Caught => {
                    tracked.push(fault);
                    state.push(FaultState::Caught);
                    images.push(None);
                }
                FaultEntry::Hidden(img) => {
                    if img.len() != l {
                        return Err(mismatch(
                            "hidden-fault image length differs from the chain".to_string(),
                        ));
                    }
                    tracked.push(fault);
                    state.push(FaultState::Hidden);
                    images.push(Some(img.clone()));
                }
            }
        }
        let tracked_len = tracked.len();
        let sets = FaultSets::restore(tracked, state, images, snap.transitions)
            .ok_or_else(|| mismatch("inconsistent fault-set state".to_string()))?;
        if snap
            .never_target
            .iter()
            .chain(&snap.failed_targets)
            .any(|&i| i >= tracked_len)
        {
            return Err(mismatch("target index out of range".to_string()));
        }
        let never_target: BTreeSet<usize> = snap.never_target.iter().copied().collect();
        let prescreen_aborted: Vec<Fault> = never_target.iter().map(|&i| sets.fault(i)).collect();

        // The baseline pattern set is deterministic given the config, so it
        // is recomputed rather than checkpointed.
        let baseline = generate_tests(eng.netlist, &cfg.baseline).map_err(|e| match e {
            tvs_atpg::AtpgOutcome::Netlist(err) => StitchError::Netlist(err),
        })?;
        let shifts = snap.cycles.iter().map(|c| c.shift).collect();
        Ok(RunState {
            eng,
            cfg,
            pool: ThreadPool::new(cfg.threads),
            rng: Prng::from_state(snap.rng),
            podem: Podem::with_config(eng.netlist, &eng.view, cfg.podem),
            fsim: FaultSim::new(eng.netlist, &eng.view),
            scoap: Scoap::compute(eng.netlist, &eng.view),
            sets,
            good_image: snap.good_image,
            cycles: snap.cycles,
            shifts,
            failed_targets: snap.failed_targets.iter().copied().collect(),
            never_target,
            prescreen_redundant,
            prescreen_aborted,
            baseline,
            budget: Budget::with_spent(cfg.budget, snap.budget_spent),
            k: snap.k,
            stagnant: snap.stagnant,
            select_failed: false,
            window: snap.window.iter().copied().collect(),
            stop: None,
        })
    }

    /// Captures a checkpoint at the current cycle boundary. Faults are
    /// recorded positionally against the collapsed list, so the snapshot
    /// needs no fault identities.
    fn snapshot(&self) -> Snapshot {
        let collapsed = self.eng.faults.faults();
        let mut fault_entries = Vec::with_capacity(collapsed.len());
        let (mut tracked_i, mut red_i) = (0usize, 0usize);
        for &fault in collapsed {
            if red_i < self.prescreen_redundant.len() && self.prescreen_redundant[red_i] == fault {
                fault_entries.push(FaultEntry::Redundant);
                red_i += 1;
            } else {
                fault_entries.push(match self.sets.state(tracked_i) {
                    FaultState::Uncaught => FaultEntry::Uncaught,
                    FaultState::Caught => FaultEntry::Caught,
                    FaultState::Hidden => FaultEntry::Hidden(
                        self.sets
                            .image(tracked_i)
                            .cloned()
                            .unwrap_or_else(BitVec::new),
                    ),
                });
                tracked_i += 1;
            }
        }
        Snapshot {
            circuit: self.eng.netlist.name().to_string(),
            gate_count: self.eng.netlist.gate_count(),
            scan_len: self.l(),
            fault_count: collapsed.len(),
            config_fingerprint: config_fingerprint(self.cfg),
            rng: self.rng.state(),
            budget_spent: self.budget.spent(),
            k: self.k,
            stagnant: self.stagnant,
            window: self.window.iter().copied().collect(),
            good_image: self.good_image.clone(),
            transitions: self.sets.transition_counts(),
            cycles: self.cycles.clone(),
            fault_entries,
            never_target: self.never_target.iter().copied().collect(),
            failed_targets: self.failed_targets.iter().copied().collect(),
        }
    }

    /// Memory cost of one `k`-bit cycle, for the efficiency window.
    fn cycle_cost(&self, k: usize) -> f64 {
        (2 * k + self.p() + self.q()) as f64
    }

    /// Whether the current shift size is spent: constrained selection found
    /// nothing, stagnation hit its limit, or the recent catches-per-
    /// memory-bit rate fell below the (discounted) baseline rate. Evaluated
    /// at the loop top from persisted state so a resumed run re-evaluates
    /// it identically.
    fn shift_exhausted(&self, baseline_rate: f64) -> bool {
        if self.select_failed || self.stagnant >= self.cfg.stagnation_limit {
            return true;
        }
        self.window.len() >= self.cfg.efficiency_window && {
            let catches: usize = self.window.iter().map(|&(c, _)| c).sum();
            let cost: f64 = self.window.iter().map(|&(_, c)| c).sum();
            (catches as f64 / cost) < baseline_rate * self.cfg.efficiency_margin
        }
    }

    /// The baseline flow's lifetime catches-per-memory-bit rate.
    fn baseline_rate(&self) -> f64 {
        let model = CostModel {
            scan_len: self.l(),
            pi_count: self.p(),
            po_count: self.q(),
        };
        let mem = model.full_costs(self.baseline.len().max(1)).memory_bits;
        self.sets.len() as f64 / mem as f64
    }

    /// Splits the collapsed list into tracked faults vs. proven-redundant
    /// ones (the paper starts `f_u` from "all the irredundant faults").
    /// Cheap testability witnesses come from random simulation; only the
    /// survivors get an unconstrained PODEM verdict. Aborted faults stay
    /// tracked (they can be caught fortuitously) but are never chosen as
    /// ATPG targets.
    fn prescreen(&mut self) -> Result<(), StitchError> {
        // Chaos hook: a worker dying this early leaves no program to
        // salvage, so the whole run reports a typed error.
        if inject::fire("stitch.prescreen.panic") {
            return Err(StitchError::WorkerPanic {
                message: inject::panic_message("stitch.prescreen.panic"),
            });
        }
        let faults = self.eng.faults.faults();
        let mut testable = vec![false; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        for _ in 0..8 {
            if alive.is_empty() {
                break;
            }
            let pattern: BitVec = (0..self.eng.view.input_count())
                .map(|_| self.rng.next_bool())
                .collect();
            let subset: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
            self.budget.charge(subset.len() as u64);
            let hits = detect_parallel(
                self.eng.netlist,
                &self.eng.view,
                &self.pool,
                &pattern,
                &subset,
            );
            alive = alive
                .into_iter()
                .zip(hits)
                .filter_map(|(i, h)| {
                    if h {
                        testable[i] = true;
                        None
                    } else {
                        Some(i)
                    }
                })
                .collect();
        }
        let free = Cube::unspecified(self.eng.view.input_count());
        let mut tracked: Vec<Fault> = Vec::with_capacity(faults.len());
        // Redundancy proofs are worth extra effort: an abort here silently
        // costs coverage, so the prescreen gets a much deeper backtrack
        // budget than per-cycle constrained generation.
        let deep = PodemConfig {
            backtrack_limit: self.cfg.podem.backtrack_limit.saturating_mul(8),
            ..self.cfg.podem
        };
        // Verdicts are independent per fault, so the deep PODEM runs fan out
        // over the pool in fixed 32-fault chunks (one prover per chunk) and
        // merge back in fault-index order — bit-identical at any thread
        // count.
        let needs: Vec<Fault> = faults
            .iter()
            .enumerate()
            .filter(|&(i, _)| !testable[i])
            .map(|(_, &f)| f)
            .collect();
        let chunks: Vec<&[Fault]> = needs.chunks(32).collect();
        let (netlist, view) = (self.eng.netlist, &self.eng.view);
        // Each verdict comes back with its backtrack count so the budget
        // charge reduces on the caller side, in fault order — deterministic
        // at any thread count.
        let verdicts: Vec<(PodemResult, u32)> = self
            .pool
            .try_map(&chunks, |_, chunk| {
                let mut prover = Podem::with_config(netlist, view, deep);
                chunk
                    .iter()
                    .map(|&fault| {
                        let verdict = prover.generate(fault, &free);
                        (verdict, prover.last_backtracks())
                    })
                    .collect::<Vec<(PodemResult, u32)>>()
            })
            .map_err(|panic| StitchError::WorkerPanic {
                message: panic.message,
            })?
            .into_iter()
            .flatten()
            .collect();
        let mut verdicts = verdicts.into_iter();
        for (i, &fault) in faults.iter().enumerate() {
            if testable[i] {
                tracked.push(fault);
                continue;
            }
            // Defensive: the pool returns one verdict per screened fault; a
            // short stream is treated as an abort rather than an invariant
            // crash.
            let (verdict, backtracks) = verdicts.next().unwrap_or((PodemResult::Aborted, 0));
            self.budget.charge(1 + u64::from(backtracks));
            match verdict {
                PodemResult::Test(_) => tracked.push(fault),
                PodemResult::Untestable => self.prescreen_redundant.push(fault),
                PodemResult::Aborted => {
                    self.prescreen_aborted.push(fault);
                    self.never_target.insert(tracked.len());
                    tracked.push(fault);
                }
            }
        }
        self.sets = FaultSets::new(tracked);
        Ok(())
    }

    fn p(&self) -> usize {
        self.eng.view.pi_count()
    }

    fn q(&self) -> usize {
        self.eng.view.po_count()
    }

    fn l(&self) -> usize {
        self.eng.chain.length()
    }

    /// Builds the constraint cube for a `k`-bit stitched cycle.
    fn constraint(&self, k: usize, first: bool) -> Cube {
        let (p, l) = (self.p(), self.l());
        let mut cube = Cube::unspecified(p + l);
        if !first {
            for j in k..l {
                cube.set(p + j, Logic::from(self.good_image.get(j - k)));
            }
        }
        cube
    }

    /// Orders the current `f_u` according to the selection strategy.
    fn ordered_targets(&mut self) -> Vec<usize> {
        let mut targets = self.sets.uncaught_indices();
        targets.retain(|i| !self.never_target.contains(i));
        match self.cfg.selection {
            SelectionStrategy::Random => self.rng.shuffle(&mut targets),
            // Hardness/Weighted: hard faults get first claim on the still-
            // loose constraint (the paper's §6.3 rationale).
            SelectionStrategy::Hardness | SelectionStrategy::Weighted => {
                targets.sort_by_key(|&i| {
                    std::cmp::Reverse(
                        self.scoap
                            .fault_hardness(self.eng.netlist, &self.sets.fault(i)),
                    )
                });
            }
            // MostFaults: candidates come from easy targets first — they
            // are the ones likely to admit tests under a tight constraint
            // (the paper's §6.1: "easy-to-test faults dominate" the early,
            // small-shift stage), and the greedy scoring then picks the
            // best of the pool.
            SelectionStrategy::MostFaults => {
                targets.sort_by_key(|&i| {
                    self.scoap
                        .fault_hardness(self.eng.netlist, &self.sets.fault(i))
                });
            }
        }
        targets
    }

    /// Which combinational outputs a `k`-bit cycle makes observable: every
    /// PO, plus the scan cells that the *next* shift will expose (sound for
    /// monotone shift policies under direct observation; under horizontal
    /// XOR it is a targeting heuristic — exact classification stays lazy).
    fn observable_flags(&self, k: usize) -> Vec<bool> {
        let (q, l) = (self.q(), self.l());
        let mut flags = vec![false; q + l];
        for f in flags.iter_mut().take(q) {
            *f = true;
        }
        for j in l.saturating_sub(k)..l {
            flags[q + j] = true;
        }
        flags
    }

    /// Tries to produce the next vector for a `k`-bit cycle; `None` when
    /// the shift size is exhausted.
    fn select_vector(&mut self, k: usize, first: bool) -> Result<Option<BitVec>, TaskPanic> {
        let constraint = self.constraint(k, first);
        let observable = self.observable_flags(if first { self.l() } else { k });
        let targets = self.ordered_targets();
        let mut candidates: Vec<BitVec> = Vec::new();

        // Phase A: demand propagation to an observable point (PO or a
        // next-shift-exposed cell) — every such vector's target is
        // guaranteed to reach f_c. Phase B (only if A yields nothing):
        // accept any differentiation; the target becomes hidden and bets on
        // the paper's mutated-stimulus mechanism. The stagnation guard in
        // `run` escalates the shift size if those bets stop paying off.
        let mut stats = [0usize; 4]; // [A-ok, A-fail, B-ok, B-fail]
        for phase in 0..2 {
            let mut attempts = 0usize;
            for &idx in &targets {
                if self.failed_targets.contains(&idx) {
                    continue;
                }
                if attempts >= self.cfg.max_targets_per_cycle {
                    break;
                }
                attempts += 1;
                let fault = self.sets.fault(idx);
                let outcome = if phase == 0 {
                    self.podem
                        .generate_observable(fault, &constraint, Some(&observable))
                } else {
                    self.podem.generate(fault, &constraint)
                };
                self.budget
                    .charge(1 + u64::from(self.podem.last_backtracks()));
                match outcome {
                    PodemResult::Test(cube) => {
                        stats[phase * 2] += 1;
                        let bits = cube.random_fill(&mut self.rng);
                        if !self.cfg.selection.is_greedy() {
                            return Ok(Some(bits));
                        }
                        candidates.push(bits);
                        if candidates.len() >= self.cfg.candidates {
                            break;
                        }
                    }
                    PodemResult::Untestable | PodemResult::Aborted => {
                        stats[phase * 2 + 1] += 1;
                        if phase == 1 {
                            self.failed_targets.insert(idx);
                        }
                    }
                }
            }
            if !candidates.is_empty() {
                break;
            }
        }
        if std::env::var_os("TVS_DEBUG").is_some() {
            eprintln!(
                "[tvs] select k={k} targets={} A:{}/{} B:{}/{}",
                targets.len(),
                stats[0],
                stats[1],
                stats[2],
                stats[3]
            );
        }

        // Phase C: context rotation. Constrained ATPG can be blocked not by
        // the shift size but by the *particular* retained response pattern;
        // applying a cheap filler vector changes that pattern and often
        // unblocks targets at the same k. Accept a random completion of the
        // constraint if it at least differentiates some uncaught fault (the
        // stagnation guard in `run` still bounds fruitless rotation).
        if candidates.is_empty() && !first {
            let uncaught = self.sets.uncaught_indices();
            let faults: Vec<Fault> = uncaught.iter().map(|&i| self.sets.fault(i)).collect();
            for _ in 0..4 {
                let bits = constraint.random_fill(&mut self.rng);
                self.budget.charge(faults.len() as u64);
                if self.fsim.detect(&bits, &faults).iter().any(|&h| h) {
                    return Ok(Some(bits));
                }
            }
        }

        if candidates.is_empty() {
            return Ok(None);
        }
        if candidates.len() == 1 {
            return Ok(candidates.pop());
        }

        // Greedy scoring. Three kinds of value, in decreasing weight:
        // catches of f_u faults (a difference at a PO or in the next-shift-
        // observed cells), catches/preservation of the *hidden* pool (an
        // erased hidden fault wastes its earlier differentiation — the
        // paper's §6.2 concern), and plain differentiations as tiebreak.
        //
        // Each candidate's score is a pure function of the candidate bits
        // and the (frozen) fault/hidden state, so the candidates fan out
        // over the pool; the strict first-best argmax below runs over the
        // input-ordered score vector, keeping the pick bit-identical at any
        // thread count.
        let uncaught = self.sets.uncaught_indices();
        let faults: Vec<Fault> = uncaught.iter().map(|&i| self.sets.fault(i)).collect();
        let weighted = self.cfg.selection == SelectionStrategy::Weighted;
        let (p, q, l) = (self.p(), self.q(), self.l());
        let watched: Vec<usize> = (0..q).chain(q + l.saturating_sub(k)..q + l).collect();
        // Hidden machines: image and fault per hidden index. The shift-out
        // stream is candidate-independent; only the post-capture fate
        // varies, via the fresh incoming bits.
        let hidden: Vec<(Fault, BitVec)> = self
            .sets
            .hidden_faults()
            .into_iter()
            .map(|h| (h.fault, h.image))
            .collect();
        let ctx = ScoreCtx {
            netlist: self.eng.netlist,
            view: &self.eng.view,
            chain: &self.eng.chain,
            scoap: &self.scoap,
            observe: self.cfg.observe,
            faults: &faults,
            hidden: &hidden,
            watched: &watched,
            weighted,
            p,
            l,
            k,
        };
        self.budget
            .charge((candidates.len() * (faults.len() + hidden.len() + 1)) as u64);
        let scores = self.pool.try_map(&candidates, |_, bits| ctx.score(bits))?;
        let mut best = 0usize;
        let mut best_score = 0u64;
        for (c, &score) in scores.iter().enumerate() {
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        Ok(Some(candidates.swap_remove(best)))
    }

    /// Simulates `(stimulus, fault)` jobs, outputs in job order: the cached
    /// sequential simulator at `threads <= 1`, the pooled fan-out otherwise.
    /// Both paths compute the same pure function of the jobs, and both
    /// degrade to the same deterministic [`TaskPanic`] when a worker dies —
    /// the lowest-index failure wins at any thread count.
    fn batch(&mut self, jobs: &[(&BitVec, Fault)]) -> Result<Vec<BitVec>, TaskPanic> {
        // The injection decision is taken here on the caller side, so the
        // sequential hit counter advances identically at any thread count;
        // the parallel path then realizes it as a genuine worker panic.
        let boom = !jobs.is_empty() && inject::fire("stitch.sim.batch");
        if self.pool.threads() <= 1 {
            if boom {
                return Err(TaskPanic {
                    index: 0,
                    message: inject::panic_message("stitch.sim.batch"),
                });
            }
            let mut outs = Vec::with_capacity(jobs.len());
            for chunk in jobs.chunks(64) {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .map(|&(stim, f)| SlotSpec {
                        stimulus: stim,
                        fault: Some(f),
                    })
                    .collect();
                outs.extend(self.fsim.run_slots(&slots));
            }
            Ok(outs)
        } else {
            batch_outputs(&self.pool, self.eng.netlist, &self.eng.view, jobs, boom)
        }
    }

    /// Applies one vector: shifts, simulates, classifies every live fault.
    ///
    /// On a worker panic the cycle is not recorded; the hidden-set updates
    /// made before the failed batch stand. That partial effect is
    /// deterministic (the surviving state is a pure function of the inputs
    /// and the panic index, which is thread-count independent) and the
    /// salvaged program stays valid — it merely under-reports the final
    /// cycle's catches.
    fn apply_cycle(&mut self, k: usize, vector: &BitVec, first: bool) -> Result<(), TaskPanic> {
        let (p, q, l) = (self.p(), self.q(), self.l());
        let chain_tv = slice_bits(vector, p..p + l);
        let incoming = incoming_from_tv(&chain_tv, k);

        // Fault-free machine.
        let observed_good = if first {
            BitVec::new() // power-up contents are not meaningful data
        } else {
            let sh = self
                .eng
                .chain
                .shift(&self.good_image, &incoming, self.cfg.observe);
            debug_assert_eq!(sh.new_image, chain_tv, "stitched vector must be reachable");
            sh.observed
        };
        let good_out = self.fsim.good_outputs(vector);
        let good_po = slice_bits(&good_out, 0..q);
        let good_resp = slice_bits(&good_out, q..q + l);
        let new_good_image = self.cfg.capture.capture(&chain_tv, &good_resp);

        let mut newly_caught = 0usize;

        // Hidden faults: private shift, private stimulus.
        let hidden = self.sets.hidden_indices();
        let mut live_hidden: Vec<(usize, BitVec)> = Vec::new();
        for idx in hidden {
            if first {
                unreachable!("no hidden faults before the first vector");
            }
            // Defensive: a hidden fault always carries an image; skip the
            // entry rather than abort if that invariant is ever violated.
            let Some(image) = self.sets.image(idx).cloned() else {
                continue;
            };
            let mut image = image;
            // Chaos hook: corrupt one bit of this fault's private chain
            // image (keyed by fault index in this sequential loop, so the
            // corruption is deterministic at any thread count).
            if let Some(bit) = inject::flip_bit("stitch.hidden.image", idx as u64, image.len()) {
                image.set(bit, !image.get(bit));
            }
            let sh = self.eng.chain.shift(&image, &incoming, self.cfg.observe);
            if sh.observed != observed_good {
                self.sets.set_caught(idx);
                newly_caught += 1;
            } else {
                let mut stim = slice_bits(vector, 0..p);
                stim.extend(sh.new_image.iter());
                live_hidden.push((idx, stim));
            }
        }
        let hidden_jobs: Vec<(&BitVec, Fault)> = live_hidden
            .iter()
            .map(|(idx, stim)| (stim, self.sets.fault(*idx)))
            .collect();
        self.budget.charge(hidden_jobs.len() as u64);
        let outs = self.batch(&hidden_jobs)?;
        for ((idx, stim), out) in live_hidden.iter().zip(&outs) {
            let f_po = slice_bits(out, 0..q);
            let f_resp = slice_bits(out, q..q + l);
            let f_chain_tv = slice_bits(stim, p..p + l);
            let image = self.cfg.capture.capture(&f_chain_tv, &f_resp);
            match Classification::classify(&good_po, &f_po, &new_good_image, &image) {
                Classification::Caught => {
                    self.sets.set_caught(*idx);
                    newly_caught += 1;
                }
                Classification::Hidden => self.sets.set_hidden(*idx, image),
                Classification::Uncaught => self.sets.set_uncaught(*idx),
            }
        }

        // Uncaught faults: shared stimulus (their machines match the good
        // one so far).
        let uncaught = self.sets.uncaught_indices();
        let uncaught_jobs: Vec<(&BitVec, Fault)> = uncaught
            .iter()
            .map(|&idx| (vector, self.sets.fault(idx)))
            .collect();
        self.budget.charge(uncaught_jobs.len() as u64 + 1);
        let outs = self.batch(&uncaught_jobs)?;
        for (&idx, out) in uncaught.iter().zip(&outs) {
            let f_po = slice_bits(out, 0..q);
            let f_resp = slice_bits(out, q..q + l);
            let image = self.cfg.capture.capture(&chain_tv, &f_resp);
            match Classification::classify(&good_po, &f_po, &new_good_image, &image) {
                Classification::Caught => {
                    self.sets.set_caught(idx);
                    newly_caught += 1;
                }
                Classification::Hidden => self.sets.set_hidden(idx, image),
                Classification::Uncaught => {}
            }
        }

        self.good_image = new_good_image;
        self.shifts.push(k);
        tvs_exec::counter("stitch.vectors_stitched").incr();
        self.cycles.push(CycleRecord {
            shift: k,
            vector: vector.clone(),
            observed: observed_good,
            newly_caught,
            hidden_after: self.sets.hidden_count(),
            uncaught_after: self.sets.uncaught_count(),
        });
        // New catches mean previously failed targets may matter again only
        // after an escalation; but a *changed* chain content re-opens
        // constrained possibilities for previously failed targets.
        self.failed_targets.clear();
        Ok(())
    }

    /// Closing flush + conventional fallback, then metric assembly.
    fn finish(mut self) -> Result<StitchReport, StitchError> {
        let l = self.l();

        // Closing flush: find, per hidden fault, the shortest flush prefix
        // that reveals it; flush long enough for all of them (exact under
        // any observation transform).
        let mut final_flush = 0usize;
        if !self.cycles.is_empty() {
            let zeros = BitVec::zeros(l);
            let sh_good = self
                .eng
                .chain
                .shift(&self.good_image, &zeros, self.cfg.observe);
            for idx in self.sets.hidden_indices() {
                // Defensive: a hidden fault always carries an image; treat a
                // missing one as never-revealed rather than aborting.
                let Some(image) = self.sets.image(idx).cloned() else {
                    self.sets.set_uncaught(idx);
                    continue;
                };
                let sh_f = self.eng.chain.shift(&image, &zeros, self.cfg.observe);
                let first_diff = (0..l).find(|&t| sh_f.observed.get(t) != sh_good.observed.get(t));
                match first_diff {
                    Some(t) => {
                        final_flush = final_flush.max(t + 1);
                        self.sets.set_caught(idx);
                    }
                    None => self.sets.set_uncaught(idx),
                }
            }
            // Even with no hidden faults the last response is conventionally
            // checked with a closing shift of the last stitch size.
            if final_flush == 0 {
                final_flush = self.shifts.last().copied().unwrap_or(l);
            }
        }

        // Fallback: conventional vectors for whatever is left in f_u —
        // skipped entirely when the run already stopped (budget or worker
        // panic): the report then salvages the stitched program as-is and
        // lists the leftovers as the residual.
        let mut extra_vectors: Vec<BitVec> = Vec::new();
        let mut redundant: Vec<Fault> = std::mem::take(&mut self.prescreen_redundant);
        let prescreen_redundant_count = redundant.len();
        let mut aborted: Vec<Fault> = std::mem::take(&mut self.prescreen_aborted);
        let free = Cube::unspecified(self.eng.view.input_count());
        let mut remaining: Vec<usize> = self
            .sets
            .uncaught_indices()
            .into_iter()
            .filter(|i| !self.never_target.contains(i))
            .collect();
        let fallback_faults: Vec<Fault> = remaining.iter().map(|&i| self.sets.fault(i)).collect();
        while self.stop.is_none() && !remaining.is_empty() {
            // Stage boundary: an exhausted budget ends the fallback between
            // vectors, leaving the leftovers as the residual.
            if self.budget.exhausted() {
                self.stop = Some(StopCause::Budget);
                break;
            }
            let idx = remaining[0];
            match self.podem.generate(self.sets.fault(idx), &free) {
                PodemResult::Test(cube) => {
                    self.budget.charge(
                        1 + u64::from(self.podem.last_backtracks()) + remaining.len() as u64,
                    );
                    let bits = cube.random_fill(&mut self.rng);
                    let faults: Vec<Fault> =
                        remaining.iter().map(|&i| self.sets.fault(i)).collect();
                    let hits = self.fsim.detect(&bits, &faults);
                    let mut next = Vec::with_capacity(remaining.len());
                    for (slot, &fi) in remaining.iter().enumerate() {
                        if hits[slot] {
                            self.sets.set_caught(fi);
                        } else {
                            next.push(fi);
                        }
                    }
                    debug_assert!(
                        next.len() < remaining.len(),
                        "fallback vector must progress"
                    );
                    if next.len() == remaining.len() {
                        // Defensive: avoid livelock on a sim/ATPG disagreement.
                        aborted.push(self.sets.fault(idx));
                        next.retain(|&i| i != idx);
                    }
                    remaining = next;
                    extra_vectors.push(bits);
                }
                PodemResult::Untestable => {
                    self.budget
                        .charge(1 + u64::from(self.podem.last_backtracks()));
                    redundant.push(self.sets.fault(idx));
                    remaining.remove(0);
                }
                PodemResult::Aborted => {
                    self.budget
                        .charge(1 + u64::from(self.podem.last_backtracks()));
                    aborted.push(self.sets.fault(idx));
                    remaining.remove(0);
                }
            }
        }
        // The fallback phase is conventional test application, so it gets
        // conventional reverse-order compaction against the faults it was
        // responsible for.
        if extra_vectors.len() > 1 {
            extra_vectors = tvs_atpg::compact_patterns(
                self.eng.netlist,
                &self.eng.view,
                &fallback_faults,
                &extra_vectors,
            );
        }

        // Baseline for the ratios (generated up front in `new`).
        let baseline = &self.baseline;

        let model = CostModel {
            scan_len: l,
            pi_count: self.p(),
            po_count: self.q(),
        };
        let stitched_costs = if self.shifts.is_empty() {
            // Degenerate: everything handled by fallback vectors.
            model.full_costs(extra_vectors.len())
        } else {
            model.stitched_costs(&self.shifts, final_flush, extra_vectors.len())
        };
        let baseline_costs = model.full_costs(baseline.len());

        // Denominator: every tracked fault that is not proven redundant.
        // Prescreen-redundant faults were never tracked, so only the
        // fallback-found redundancies must be discounted here.
        let fallback_redundant = redundant.len() - prescreen_redundant_count;
        let testable = self.sets.len() - fallback_redundant;
        let coverage = if testable == 0 {
            1.0
        } else {
            self.sets.caught_count() as f64 / testable as f64
        };

        let metrics = CompressionMetrics::new(
            self.cycles.len(),
            extra_vectors.len(),
            baseline.len(),
            stitched_costs,
            baseline_costs,
            coverage,
        );

        tvs_exec::counter("stitch.extra_vectors").add(extra_vectors.len() as u64);
        // Degenerate runs (no stitched cycles, everything on fallback
        // vectors) have no program shape to check.
        if !self.shifts.is_empty() {
            tvs_lint::debug_assert_program_clean(
                &tvs_lint::ProgramSpec {
                    scan_len: l,
                    shifts: self.shifts.clone(),
                    final_flush,
                    extra_vectors: extra_vectors.len(),
                    uncaught_at_fallback: fallback_faults.len(),
                },
                "stitch::finish",
            );
        }
        let hidden_transitions = self.sets.transition_counts();
        let residual: Vec<Fault> = if self.stop.is_some() {
            self.sets
                .uncaught_indices()
                .into_iter()
                .map(|i| self.sets.fault(i))
                .collect()
        } else {
            Vec::new()
        };
        let termination = match self.stop.take() {
            None => Termination::Complete,
            Some(StopCause::Budget) => Termination::BudgetExhausted { residual },
            Some(StopCause::Worker(panic)) => Termination::WorkerPanic {
                message: panic.message,
                residual,
            },
        };
        Ok(StitchReport {
            cycles: self.cycles,
            shifts: self.shifts,
            final_flush,
            extra_vectors,
            redundant,
            aborted,
            metrics,
            hidden_transitions,
            termination,
        })
    }
}

/// Simulates `(stimulus, fault)` jobs in 64-slot batches fanned out over
/// the pool, returning the faulty outputs in job order. Every batch builds
/// its own simulator, so outputs are independent of batching and thread
/// count. With `boom` set (an armed `stitch.sim.batch` injection), the
/// first chunk's worker panics; the captured [`TaskPanic`] then matches the
/// sequential path's bit for bit.
fn batch_outputs(
    pool: &ThreadPool,
    netlist: &Netlist,
    view: &ScanView,
    jobs: &[(&BitVec, Fault)],
    boom: bool,
) -> Result<Vec<BitVec>, TaskPanic> {
    let chunks: Vec<&[(&BitVec, Fault)]> = jobs.chunks(64).collect();
    Ok(pool
        .try_map(&chunks, |i, chunk| {
            if boom && i == 0 {
                inject::panic_now("stitch.sim.batch");
            }
            let mut fsim = FaultSim::new(netlist, view);
            let slots: Vec<SlotSpec<'_>> = chunk
                .iter()
                .map(|&(stim, f)| SlotSpec {
                    stimulus: stim,
                    fault: Some(f),
                })
                .collect();
            fsim.run_slots(&slots)
        })?
        .into_iter()
        .flatten()
        .collect())
}

/// Frozen inputs of one candidate-scoring round. [`ScoreCtx::score`] is a
/// pure function of this context plus the candidate bits (each invocation
/// builds its own simulator), which is what lets `select_vector` fan the
/// candidates out over the thread pool.
struct ScoreCtx<'c> {
    netlist: &'c Netlist,
    view: &'c ScanView,
    chain: &'c ScanChain,
    scoap: &'c Scoap,
    observe: ObserveTransform,
    faults: &'c [Fault],
    hidden: &'c [(Fault, BitVec)],
    watched: &'c [usize],
    weighted: bool,
    p: usize,
    l: usize,
    k: usize,
}

impl ScoreCtx<'_> {
    fn score(&self, bits: &BitVec) -> u64 {
        let mut fsim = FaultSim::new(self.netlist, self.view);
        let good = fsim.good_outputs(bits);
        let mut score = 0u64;
        for chunk in self.faults.chunks(63) {
            let slots: Vec<SlotSpec<'_>> = chunk
                .iter()
                .map(|&f| SlotSpec {
                    stimulus: bits,
                    fault: Some(f),
                })
                .collect();
            let outs = fsim.run_slots(&slots);
            for (f, out) in chunk.iter().zip(&outs) {
                let caught = self.watched.iter().any(|&o| out.get(o) != good.get(o));
                let differentiated = caught || out != &good;
                let unit = if self.weighted {
                    self.scoap.fault_hardness(self.netlist, f).max(1)
                } else {
                    1
                };
                if caught {
                    score += unit * 1000;
                } else if differentiated {
                    score += unit;
                }
            }
        }
        if !self.hidden.is_empty() {
            let chain_tv = slice_bits(bits, self.p..self.p + self.l);
            let incoming = incoming_from_tv(&chain_tv, self.k);
            let mut stimuli: Vec<BitVec> = Vec::with_capacity(self.hidden.len());
            for (_, image) in self.hidden {
                let sh = self.chain.shift(image, &incoming, self.observe);
                let mut stim = slice_bits(bits, 0..self.p);
                stim.extend(sh.new_image.iter());
                stimuli.push(stim);
            }
            for (chunk_i, chunk) in self.hidden.chunks(63).enumerate() {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, &(fault, _))| SlotSpec {
                        stimulus: &stimuli[chunk_i * 63 + j],
                        fault: Some(fault),
                    })
                    .collect();
                let outs = fsim.run_slots(&slots);
                for out in &outs {
                    let caught = self.watched.iter().any(|&o| out.get(o) != good.get(o));
                    let kept = out != &good;
                    if caught {
                        score += 1000;
                    } else if kept {
                        score += 30;
                    }
                }
            }
        }
        score
    }
}

/// Extracts `range` of a [`BitVec`] as a new vector.
fn slice_bits(bits: &BitVec, range: std::ops::Range<usize>) -> BitVec {
    range.map(|i| bits.get(i)).collect()
}

/// Converts the desired final content of the first `k` chain cells into
/// scan-in entry order (the bit destined for cell `k-1` enters first).
fn incoming_from_tv(chain_tv: &BitVec, k: usize) -> BitVec {
    (0..k).map(|t| chain_tv.get(k - 1 - t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    fn bv(s: &str) -> BitVec {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn no_scan_chain_is_rejected() {
        let mut b = NetlistBuilder::new("comb");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Not, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        assert!(matches!(
            StitchEngine::new(&n),
            Err(StitchError::NoScanChain)
        ));
    }

    #[test]
    fn fig1_run_reaches_full_coverage() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let report = engine.run(&StitchConfig::default()).unwrap();
        assert!(
            report.metrics.fault_coverage >= 1.0 - 1e-9,
            "coverage {}",
            report.metrics.fault_coverage
        );
        assert_eq!(report.redundant.len(), 1, "the paper's E-F/1");
        assert!(report.aborted.is_empty());
    }

    #[test]
    fn fig1_compresses_versus_baseline() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let cfg = StitchConfig {
            policy: ShiftPolicy::Fixed(2),
            ..StitchConfig::default()
        };
        let report = engine.run(&cfg).unwrap();
        assert!(report.metrics.time_ratio > 0.0);
        // With k = 2 of 3 the stitched stream must beat full shifting per
        // vector unless many extra vectors were needed.
        if report.extra_vectors.is_empty() {
            assert!(
                report.metrics.time_ratio <= 1.05,
                "t = {}",
                report.metrics.time_ratio
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let a = engine.run(&StitchConfig::default()).unwrap();
        let b = engine.run(&StitchConfig::default()).unwrap();
        assert_eq!(a.shifts, b.shifts);
        assert_eq!(a.metrics.stitched_vectors, b.metrics.stitched_vectors);
        assert_eq!(
            a.cycles
                .iter()
                .map(|c| c.vector.clone())
                .collect::<Vec<_>>(),
            b.cycles
                .iter()
                .map(|c| c.vector.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_reproduces_table1_catches() {
        // The paper's schedule: 110, then 2-bit stitches yielding 001, 100,
        // 010, closing with a 2-bit flush.
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let vectors = vec![bv("110"), bv("001"), bv("100"), bv("010")];
        let trace = engine
            .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
            .unwrap();

        // Fault-free responses per the paper.
        let resp: Vec<String> = trace
            .cycles
            .iter()
            .map(|c| c.response.to_string())
            .collect();
        assert_eq!(resp, vec!["111", "010", "000", "010"]);

        // Every fault except the redundant E-F/1 is caught.
        let uncaught: Vec<String> = trace
            .rows
            .iter()
            .filter(|r| r.caught_at.is_none())
            .map(|r| r.fault.display_in(&n))
            .collect();
        assert_eq!(uncaught, vec!["E-F/1".to_string()]);

        // Spot-check the paper's hidden-fault story: F/0 is NOT caught in
        // cycle 0 (its effect hides in cell a) but in cycle 1.
        let f0 = trace
            .rows
            .iter()
            .find(|r| r.fault.display_in(&n) == "F/0")
            .expect("F/0 tracked");
        assert_eq!(f0.caught_at, Some(1));
        assert_eq!(f0.entries[0].response.to_string(), "011");
        // Its mutated second vector is 000 (not the intended 001).
        assert_eq!(f0.entries[1].vector.to_string(), "000");
        assert_eq!(f0.entries[1].response.to_string(), "000");
    }

    #[test]
    fn replay_rejects_impossible_schedules() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        // Second vector 101: cell c would need to hold 1, but the shifted
        // response leaves a 1 only via cell a of response 111 -> c = 1 works;
        // pick something genuinely inconsistent: 011 needs c = 1 as well...
        // response 111 shifted by 2 gives c = 1, cells a,b free. So any
        // second vector with c = 0 is impossible.
        let vectors = vec![bv("110"), bv("010")];
        let err = engine
            .replay(&vectors, &[3, 2], 2, &StitchConfig::default())
            .unwrap_err();
        assert!(matches!(err, StitchError::ReplayMismatch { cycle: 1 }));
    }

    #[test]
    fn hidden_faults_appear_during_fig1_replay() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let vectors = vec![bv("110"), bv("001"), bv("100"), bv("010")];
        let trace = engine
            .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
            .unwrap();
        // F/1 and D-F/1 mutate the third vector to 101 per the paper.
        for name in ["F/1", "D-F/1"] {
            let row = trace.rows.iter().find(|r| r.fault.display_in(&n) == name);
            if let Some(row) = row {
                // (collapsing may merge D-F/1 into another representative)
                assert_eq!(row.caught_at, Some(2), "{name}");
                assert_eq!(row.entries[2].vector.to_string(), "101", "{name}");
            }
        }
    }
}
