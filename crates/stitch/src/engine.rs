//! The stitched test generation engine (the paper's Fig. 2 flow).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use tvs_exec::ThreadPool;
use tvs_logic::{BitVec, Cube, Logic, Prng};
use tvs_netlist::{Netlist, NetlistError, ScanView};

use tvs_atpg::{generate_tests, AtpgConfig, Podem, PodemConfig, PodemResult};
use tvs_fault::{detect_parallel, Fault, FaultList, FaultSim, Scoap, SlotSpec};
use tvs_scan::{CaptureTransform, CostModel, ObserveTransform, ScanChain};

use crate::{
    Classification, CompressionMetrics, CycleRecord, FaultSets, SelectionStrategy, ShiftPolicy,
};

/// Configuration of a stitched test generation run.
#[derive(Debug, Clone)]
pub struct StitchConfig {
    /// Shift-size policy (paper §6.1).
    pub policy: ShiftPolicy,
    /// Vector-selection strategy (paper §6.3).
    pub selection: SelectionStrategy,
    /// Capture transform (paper §6.2, VXOR).
    pub capture: CaptureTransform,
    /// Observation transform (paper §6.2, HXOR).
    pub observe: ObserveTransform,
    /// Seed for everything random (fill, random ordering).
    pub seed: u64,
    /// PODEM settings for constrained generation.
    pub podem: PodemConfig,
    /// Upper bound on constrained-ATPG attempts per cycle (failures are
    /// cached per shift size, so the engine normally scans the whole of
    /// `f_u` before declaring a shift size exhausted).
    pub max_targets_per_cycle: usize,
    /// How many candidate vectors the greedy strategies score per cycle.
    pub candidates: usize,
    /// Absolute cap on stitched cycles (safety valve).
    pub max_cycles: usize,
    /// Consecutive zero-catch cycles tolerated before the current shift
    /// size is treated as exhausted.
    pub stagnation_limit: usize,
    /// Window (in cycles) for the marginal-efficiency check: when the
    /// recent catches-per-memory-bit rate falls below the baseline flow's
    /// overall rate times [`efficiency_margin`](Self::efficiency_margin),
    /// the current shift size is treated as exhausted — the compacted
    /// fallback is the cheaper tool past that point.
    pub efficiency_window: usize,
    /// Discount on the baseline rate used by the marginal-efficiency check;
    /// below 1 because the fallback's *marginal* productivity on the
    /// leftover hard faults is well below the baseline's average.
    pub efficiency_margin: f64,
    /// Baseline ATPG settings (the `aTV` reference run).
    pub baseline: AtpgConfig,
    /// Worker threads for the parallelizable stages (prescreen verdicts,
    /// candidate scoring, classification sweeps). `1` (the default) runs
    /// everything on the calling thread; any value produces bit-identical
    /// results — parallel stages reduce in input order (DESIGN.md §6.4).
    pub threads: usize,
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            policy: ShiftPolicy::default(),
            selection: SelectionStrategy::default(),
            capture: CaptureTransform::default(),
            observe: ObserveTransform::default(),
            seed: 0x5717C4,
            podem: PodemConfig::default(),
            max_targets_per_cycle: 192,
            candidates: 8,
            max_cycles: 4096,
            stagnation_limit: 6,
            efficiency_window: 6,
            efficiency_margin: 0.5,
            baseline: AtpgConfig::default(),
            threads: 1,
        }
    }
}

/// Errors from the stitching engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum StitchError {
    /// The circuit has no flip-flops — nothing to stitch through.
    NoScanChain,
    /// The netlist could not be levelized.
    Netlist(NetlistError),
    /// A replayed vector's pinned bits disagree with the previous response.
    ReplayMismatch {
        /// 0-based cycle index of the offending vector.
        cycle: usize,
    },
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::NoScanChain => write!(f, "circuit has no scan chain"),
            StitchError::Netlist(e) => write!(f, "netlist error: {e}"),
            StitchError::ReplayMismatch { cycle } => write!(
                f,
                "replayed vector {cycle} conflicts with the retained response bits"
            ),
        }
    }
}

impl Error for StitchError {}

impl From<NetlistError> for StitchError {
    fn from(e: NetlistError) -> Self {
        StitchError::Netlist(e)
    }
}

/// The full outcome of a stitched run.
#[derive(Debug, Clone)]
pub struct StitchReport {
    /// Per-cycle records (first entry is the initial full shift-in).
    pub cycles: Vec<CycleRecord>,
    /// The shift sizes, `cycles[i].shift` collected for cost accounting.
    pub shifts: Vec<usize>,
    /// The closing flush length the engine decided on.
    pub final_flush: usize,
    /// Fallback full-shift vectors appended at the end.
    pub extra_vectors: Vec<BitVec>,
    /// Faults proven redundant (by unconstrained ATPG in the fallback).
    pub redundant: Vec<Fault>,
    /// Faults the fallback ATPG aborted on.
    pub aborted: Vec<Fault>,
    /// The headline `TV / ex / m / t` numbers.
    pub metrics: CompressionMetrics,
    /// Hidden-fault lifecycle counters `(entered, converted to caught,
    /// erased back to uncaught)` — the dynamics of the paper's §6.2.
    pub hidden_transitions: (usize, usize, usize),
}

/// One cycle of a [`replay`](StitchEngine::replay): the fault-free vector
/// and response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCycle {
    /// The intended (fault-free) stimulus, PIs then chain cells.
    pub vector: BitVec,
    /// The fault-free outputs, POs then captured chain cells.
    pub response: BitVec,
}

/// One fault's row in a [`ReplayTrace`] — the paper's Table 1 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRow {
    /// The fault.
    pub fault: Fault,
    /// Per cycle (until caught): the stimulus this faulty machine actually
    /// received and the response it produced.
    pub entries: Vec<ReplayCycle>,
    /// The 0-based cycle at which the fault's effect reached the tester,
    /// `None` if it never did (redundant or unlucky).
    pub caught_at: Option<usize>,
}

/// The outcome of replaying a fixed vector schedule (reproduces Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayTrace {
    /// Fault-free behaviour per cycle.
    pub cycles: Vec<ReplayCycle>,
    /// One row per tracked fault.
    pub rows: Vec<ReplayRow>,
}

/// The stitched test generation engine.
///
/// # Examples
///
/// ```
/// use tvs_netlist::{GateKind, NetlistBuilder};
/// use tvs_stitch::{StitchConfig, StitchEngine};
///
/// // The paper's Figure 1 circuit.
/// let mut b = NetlistBuilder::new("fig1");
/// b.add_dff("a", "F")?;
/// b.add_dff("b", "E")?;
/// b.add_dff("c", "D")?;
/// b.add_gate("D", GateKind::And, &["a", "b"])?;
/// b.add_gate("E", GateKind::Or, &["b", "c"])?;
/// b.add_gate("F", GateKind::And, &["D", "E"])?;
/// let netlist = b.build()?;
///
/// let engine = StitchEngine::new(&netlist)?;
/// let report = engine.run(&StitchConfig::default())?;
/// assert!(report.metrics.fault_coverage >= 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StitchEngine<'a> {
    netlist: &'a Netlist,
    view: ScanView,
    chain: ScanChain,
    faults: FaultList,
}

impl<'a> StitchEngine<'a> {
    /// Prepares an engine for a netlist: builds the scan view and the
    /// collapsed fault list.
    ///
    /// # Errors
    ///
    /// [`StitchError::NoScanChain`] for purely combinational circuits,
    /// [`StitchError::Netlist`] if levelization fails.
    pub fn new(netlist: &'a Netlist) -> Result<Self, StitchError> {
        tvs_lint::debug_assert_netlist_clean(netlist, "stitch::StitchEngine::new");
        if netlist.dff_count() == 0 {
            return Err(StitchError::NoScanChain);
        }
        let view = netlist.scan_view()?;
        Ok(StitchEngine {
            netlist,
            view,
            chain: ScanChain::new(netlist.dff_count()),
            faults: FaultList::collapsed(netlist),
        })
    }

    /// The scan view the engine operates on.
    pub fn view(&self) -> &ScanView {
        &self.view
    }

    /// The collapsed fault list the engine tracks.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// Runs stitched test generation end to end and reports the paper's
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors from the baseline ATPG run.
    pub fn run(&self, config: &StitchConfig) -> Result<StitchReport, StitchError> {
        let _timer = tvs_exec::span("stitch.run");
        let mut run = RunState::new(self, config)?;
        let l = self.chain.length();
        let mut k = config.policy.initial(l);
        let baseline_rate = run.baseline_rate();
        let pq = run.p() + run.q();
        let cycle_cost = move |k: usize| (2 * k + pq) as f64;
        let mut window: std::collections::VecDeque<(usize, f64)> =
            std::collections::VecDeque::new();

        // Cycle 1: a conventional full shift-in, but chosen by the same
        // selection machinery (constraint-free).
        if run.sets.uncaught_count() > 0 {
            if let Some(vector) = run.select_vector(l, true) {
                run.apply_cycle(l, &vector, true);
            }
        }

        let mut stagnant = 0usize;
        while run.sets.uncaught_count() > 0 && run.cycles.len() < config.max_cycles {
            let exhausted = match run.select_vector(k, false) {
                Some(vector) => {
                    run.apply_cycle(k, &vector, false);
                    let caught = run.cycles.last().map(|c| c.newly_caught).unwrap_or(0);
                    if caught == 0 {
                        stagnant += 1;
                    } else {
                        stagnant = 0;
                    }
                    window.push_back((caught, cycle_cost(k)));
                    if window.len() > config.efficiency_window {
                        window.pop_front();
                    }
                    let below_baseline = window.len() >= config.efficiency_window && {
                        let catches: usize = window.iter().map(|&(c, _)| c).sum();
                        let cost: f64 = window.iter().map(|&(_, c)| c).sum();
                        (catches as f64 / cost) < baseline_rate * config.efficiency_margin
                    };
                    stagnant >= config.stagnation_limit || below_baseline
                }
                None => true,
            };
            if exhausted {
                if std::env::var_os("TVS_DEBUG").is_some() {
                    eprintln!(
                        "[tvs] escalate from k={k}: cycles={} caught={} hidden={} uncaught={}",
                        run.cycles.len(),
                        run.sets.caught_count(),
                        run.sets.hidden_count(),
                        run.sets.uncaught_count()
                    );
                }
                match config.policy.escalate(l, k) {
                    Some(next) => {
                        k = next;
                        stagnant = 0;
                        window.clear();
                        run.failed_targets.clear();
                    }
                    None => break,
                }
            }
        }

        run.finish()
    }

    /// Replays a fixed schedule of vectors (reproducing the paper's
    /// Table 1): every collapsed fault is tracked through each cycle until
    /// its effect reaches the tester.
    ///
    /// `vectors[i]` is the full intended stimulus (PIs then chain cells) of
    /// cycle `i`; `shifts[i]` the bits shifted before applying it
    /// (`shifts[0]` must equal the scan length); `final_flush` the closing
    /// observation shift.
    ///
    /// # Errors
    ///
    /// [`StitchError::ReplayMismatch`] if a vector's retained chain bits do
    /// not equal the shifted previous response — such a schedule is
    /// physically impossible to apply.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` and `shifts` have different lengths or a vector
    /// has the wrong width.
    pub fn replay(
        &self,
        vectors: &[BitVec],
        shifts: &[usize],
        final_flush: usize,
        config: &StitchConfig,
    ) -> Result<ReplayTrace, StitchError> {
        assert_eq!(vectors.len(), shifts.len(), "one shift size per vector");
        assert!(!vectors.is_empty(), "at least one vector");
        assert_eq!(
            shifts[0],
            self.chain.length(),
            "first vector is a full shift"
        );
        let p = self.view.pi_count();
        let l = self.chain.length();
        let q = self.view.po_count();
        for v in vectors {
            assert_eq!(v.len(), p + l, "vector width must be PIs + scan cells");
        }

        let mut fsim = FaultSim::new(self.netlist, &self.view);
        let n_faults = self.faults.len();

        // Good machine first: validate the schedule and precompute images.
        let mut good_cycles: Vec<ReplayCycle> = Vec::new();
        let mut good_images: Vec<BitVec> = Vec::new();
        let mut image = BitVec::zeros(l);
        for (i, vector) in vectors.iter().enumerate() {
            let chain_tv = slice_bits(vector, p..p + l);
            if i > 0 {
                // Pinned consistency: retained cells must match the shifted
                // previous image.
                let k = shifts[i];
                let shifted =
                    self.chain
                        .shift(&image, &incoming_from_tv(&chain_tv, k), config.observe);
                if slice_bits(&shifted.new_image, k..l) != slice_bits(&chain_tv, k..l) {
                    return Err(StitchError::ReplayMismatch { cycle: i });
                }
            }
            let out = fsim.good_outputs(vector);
            let resp = slice_bits(&out, q..q + l);
            image = config.capture.capture(&chain_tv, &resp);
            good_cycles.push(ReplayCycle {
                vector: vector.clone(),
                response: out,
            });
            good_images.push(image.clone());
        }

        // Per-fault tracking with one chain image each.
        let mut rows: Vec<ReplayRow> = self
            .faults
            .iter()
            .map(|&fault| ReplayRow {
                fault,
                entries: Vec::new(),
                caught_at: None,
            })
            .collect();
        let mut images: Vec<BitVec> = vec![BitVec::zeros(l); n_faults];

        for (i, vector) in vectors.iter().enumerate() {
            let k = shifts[i];
            let alive: Vec<usize> = (0..n_faults)
                .filter(|&f| rows[f].caught_at.is_none())
                .collect();
            if alive.is_empty() {
                break;
            }
            // Derive each alive fault's stimulus by shifting its own image.
            let mut stimuli: Vec<BitVec> = Vec::with_capacity(alive.len());
            let mut shift_caught: Vec<bool> = Vec::with_capacity(alive.len());
            let good_chain_tv = slice_bits(vector, p..p + l);
            let incoming = incoming_from_tv(&good_chain_tv, k);
            for &f in &alive {
                if i == 0 {
                    stimuli.push(vector.clone());
                    shift_caught.push(false);
                } else {
                    let good_prev = &good_images[i - 1];
                    let sh_good = self.chain.shift(good_prev, &incoming, config.observe);
                    let sh_f = self.chain.shift(&images[f], &incoming, config.observe);
                    shift_caught.push(sh_f.observed != sh_good.observed);
                    let mut stim = slice_bits(vector, 0..p);
                    stim.extend(sh_f.new_image.iter());
                    stimuli.push(stim);
                }
            }
            // Simulate all alive faulty machines under their own stimuli.
            let mut outs: Vec<BitVec> = Vec::with_capacity(alive.len());
            for batch_start in (0..alive.len()).step_by(64) {
                let end = (batch_start + 64).min(alive.len());
                let slots: Vec<SlotSpec<'_>> = (batch_start..end)
                    .map(|j| SlotSpec {
                        stimulus: &stimuli[j],
                        fault: Some(self.faults.faults()[alive[j]]),
                    })
                    .collect();
                outs.extend(fsim.run_slots(&slots));
            }
            let good_out = &good_cycles[i].response;
            for (j, &f) in alive.iter().enumerate() {
                let out = &outs[j];
                let chain_stim = slice_bits(&stimuli[j], p..p + l);
                let resp = slice_bits(out, q..q + l);
                images[f] = config.capture.capture(&chain_stim, &resp);
                rows[f].entries.push(ReplayCycle {
                    vector: stimuli[j].clone(),
                    response: out.clone(),
                });
                // Caught this cycle if the shift revealed an older effect,
                // the POs differ now, or the captured image difference will
                // be shifted out next cycle (exact lookahead, including the
                // closing flush).
                let po_differs = slice_bits(out, 0..q) != slice_bits(good_out, 0..q);
                let next_k = if i + 1 < shifts.len() {
                    shifts[i + 1]
                } else {
                    final_flush
                };
                let next_incoming = if i + 1 < vectors.len() {
                    incoming_from_tv(&slice_bits(&vectors[i + 1], p..p + l), next_k)
                } else {
                    BitVec::zeros(next_k)
                };
                let sh_good_next =
                    self.chain
                        .shift(&good_images[i], &next_incoming, config.observe);
                let sh_f_next = self.chain.shift(&images[f], &next_incoming, config.observe);
                let observed_next = sh_f_next.observed != sh_good_next.observed;
                if shift_caught[j] || po_differs || observed_next {
                    rows[f].caught_at = Some(i);
                }
            }
        }

        Ok(ReplayTrace {
            cycles: good_cycles,
            rows,
        })
    }
}

/// Mutable state of one `run` invocation.
struct RunState<'r, 'a> {
    eng: &'r StitchEngine<'a>,
    cfg: &'r StitchConfig,
    pool: ThreadPool,
    rng: Prng,
    podem: Podem<'r>,
    fsim: FaultSim<'r>,
    scoap: Scoap,
    sets: FaultSets,
    good_image: BitVec,
    cycles: Vec<CycleRecord>,
    shifts: Vec<usize>,
    /// Targets that failed constrained ATPG at the current shift size.
    failed_targets: BTreeSet<usize>,
    /// Faults prescreened as ATPG-hopeless: never chosen as targets (they
    /// may still be caught fortuitously).
    never_target: BTreeSet<usize>,
    /// Faults proven redundant by the prescreen (excluded from tracking).
    prescreen_redundant: Vec<Fault>,
    /// Faults the prescreen PODEM aborted on.
    prescreen_aborted: Vec<Fault>,
    /// The baseline pattern set (run up front; needed for the ratios anyway
    /// and for the marginal-efficiency stop rule).
    baseline: tvs_atpg::PatternSet,
}

impl<'r, 'a> RunState<'r, 'a> {
    fn new(eng: &'r StitchEngine<'a>, cfg: &'r StitchConfig) -> Result<Self, StitchError> {
        let scoap = Scoap::compute(eng.netlist, &eng.view);
        let baseline = generate_tests(eng.netlist, &cfg.baseline).map_err(|e| match e {
            tvs_atpg::AtpgOutcome::Netlist(err) => StitchError::Netlist(err),
        })?;
        let mut state = RunState {
            eng,
            cfg,
            pool: ThreadPool::new(cfg.threads),
            rng: Prng::seed_from_u64(cfg.seed),
            podem: Podem::with_config(eng.netlist, &eng.view, cfg.podem),
            fsim: FaultSim::new(eng.netlist, &eng.view),
            scoap,
            sets: FaultSets::new(Vec::new()),
            good_image: BitVec::zeros(eng.chain.length()),
            cycles: Vec::new(),
            shifts: Vec::new(),
            failed_targets: BTreeSet::new(),
            never_target: BTreeSet::new(),
            prescreen_redundant: Vec::new(),
            prescreen_aborted: Vec::new(),
            baseline,
        };
        state.prescreen();
        Ok(state)
    }

    /// The baseline flow's lifetime catches-per-memory-bit rate.
    fn baseline_rate(&self) -> f64 {
        let model = CostModel {
            scan_len: self.l(),
            pi_count: self.p(),
            po_count: self.q(),
        };
        let mem = model.full_costs(self.baseline.len().max(1)).memory_bits;
        self.sets.len() as f64 / mem as f64
    }

    /// Splits the collapsed list into tracked faults vs. proven-redundant
    /// ones (the paper starts `f_u` from "all the irredundant faults").
    /// Cheap testability witnesses come from random simulation; only the
    /// survivors get an unconstrained PODEM verdict. Aborted faults stay
    /// tracked (they can be caught fortuitously) but are never chosen as
    /// ATPG targets.
    fn prescreen(&mut self) {
        let faults = self.eng.faults.faults();
        let mut testable = vec![false; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        for _ in 0..8 {
            if alive.is_empty() {
                break;
            }
            let pattern: BitVec = (0..self.eng.view.input_count())
                .map(|_| self.rng.next_bool())
                .collect();
            let subset: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
            let hits = detect_parallel(
                self.eng.netlist,
                &self.eng.view,
                &self.pool,
                &pattern,
                &subset,
            );
            alive = alive
                .into_iter()
                .zip(hits)
                .filter_map(|(i, h)| {
                    if h {
                        testable[i] = true;
                        None
                    } else {
                        Some(i)
                    }
                })
                .collect();
        }
        let free = Cube::unspecified(self.eng.view.input_count());
        let mut tracked: Vec<Fault> = Vec::with_capacity(faults.len());
        // Redundancy proofs are worth extra effort: an abort here silently
        // costs coverage, so the prescreen gets a much deeper backtrack
        // budget than per-cycle constrained generation.
        let deep = PodemConfig {
            backtrack_limit: self.cfg.podem.backtrack_limit.saturating_mul(8),
            ..self.cfg.podem
        };
        // Verdicts are independent per fault, so the deep PODEM runs fan out
        // over the pool in fixed 32-fault chunks (one prover per chunk) and
        // merge back in fault-index order — bit-identical at any thread
        // count.
        let needs: Vec<Fault> = faults
            .iter()
            .enumerate()
            .filter(|&(i, _)| !testable[i])
            .map(|(_, &f)| f)
            .collect();
        let chunks: Vec<&[Fault]> = needs.chunks(32).collect();
        let (netlist, view) = (self.eng.netlist, &self.eng.view);
        let verdicts: Vec<PodemResult> = self
            .pool
            .map(&chunks, |_, chunk| {
                let mut prover = Podem::with_config(netlist, view, deep);
                chunk
                    .iter()
                    .map(|&fault| prover.generate(fault, &free))
                    .collect::<Vec<PodemResult>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut verdicts = verdicts.into_iter();
        for (i, &fault) in faults.iter().enumerate() {
            if testable[i] {
                tracked.push(fault);
                continue;
            }
            match verdicts.next().expect("one verdict per screened fault") {
                PodemResult::Test(_) => tracked.push(fault),
                PodemResult::Untestable => self.prescreen_redundant.push(fault),
                PodemResult::Aborted => {
                    self.prescreen_aborted.push(fault);
                    self.never_target.insert(tracked.len());
                    tracked.push(fault);
                }
            }
        }
        self.sets = FaultSets::new(tracked);
    }

    fn p(&self) -> usize {
        self.eng.view.pi_count()
    }

    fn q(&self) -> usize {
        self.eng.view.po_count()
    }

    fn l(&self) -> usize {
        self.eng.chain.length()
    }

    /// Builds the constraint cube for a `k`-bit stitched cycle.
    fn constraint(&self, k: usize, first: bool) -> Cube {
        let (p, l) = (self.p(), self.l());
        let mut cube = Cube::unspecified(p + l);
        if !first {
            for j in k..l {
                cube.set(p + j, Logic::from(self.good_image.get(j - k)));
            }
        }
        cube
    }

    /// Orders the current `f_u` according to the selection strategy.
    fn ordered_targets(&mut self) -> Vec<usize> {
        let mut targets = self.sets.uncaught_indices();
        targets.retain(|i| !self.never_target.contains(i));
        match self.cfg.selection {
            SelectionStrategy::Random => self.rng.shuffle(&mut targets),
            // Hardness/Weighted: hard faults get first claim on the still-
            // loose constraint (the paper's §6.3 rationale).
            SelectionStrategy::Hardness | SelectionStrategy::Weighted => {
                targets.sort_by_key(|&i| {
                    std::cmp::Reverse(
                        self.scoap
                            .fault_hardness(self.eng.netlist, &self.sets.fault(i)),
                    )
                });
            }
            // MostFaults: candidates come from easy targets first — they
            // are the ones likely to admit tests under a tight constraint
            // (the paper's §6.1: "easy-to-test faults dominate" the early,
            // small-shift stage), and the greedy scoring then picks the
            // best of the pool.
            SelectionStrategy::MostFaults => {
                targets.sort_by_key(|&i| {
                    self.scoap
                        .fault_hardness(self.eng.netlist, &self.sets.fault(i))
                });
            }
        }
        targets
    }

    /// Which combinational outputs a `k`-bit cycle makes observable: every
    /// PO, plus the scan cells that the *next* shift will expose (sound for
    /// monotone shift policies under direct observation; under horizontal
    /// XOR it is a targeting heuristic — exact classification stays lazy).
    fn observable_flags(&self, k: usize) -> Vec<bool> {
        let (q, l) = (self.q(), self.l());
        let mut flags = vec![false; q + l];
        for f in flags.iter_mut().take(q) {
            *f = true;
        }
        for j in l.saturating_sub(k)..l {
            flags[q + j] = true;
        }
        flags
    }

    /// Tries to produce the next vector for a `k`-bit cycle; `None` when
    /// the shift size is exhausted.
    fn select_vector(&mut self, k: usize, first: bool) -> Option<BitVec> {
        let constraint = self.constraint(k, first);
        let observable = self.observable_flags(if first { self.l() } else { k });
        let targets = self.ordered_targets();
        let mut candidates: Vec<BitVec> = Vec::new();

        // Phase A: demand propagation to an observable point (PO or a
        // next-shift-exposed cell) — every such vector's target is
        // guaranteed to reach f_c. Phase B (only if A yields nothing):
        // accept any differentiation; the target becomes hidden and bets on
        // the paper's mutated-stimulus mechanism. The stagnation guard in
        // `run` escalates the shift size if those bets stop paying off.
        let mut stats = [0usize; 4]; // [A-ok, A-fail, B-ok, B-fail]
        for phase in 0..2 {
            let mut attempts = 0usize;
            for &idx in &targets {
                if self.failed_targets.contains(&idx) {
                    continue;
                }
                if attempts >= self.cfg.max_targets_per_cycle {
                    break;
                }
                attempts += 1;
                let fault = self.sets.fault(idx);
                let outcome = if phase == 0 {
                    self.podem
                        .generate_observable(fault, &constraint, Some(&observable))
                } else {
                    self.podem.generate(fault, &constraint)
                };
                match outcome {
                    PodemResult::Test(cube) => {
                        stats[phase * 2] += 1;
                        let bits = cube.random_fill(&mut self.rng);
                        if !self.cfg.selection.is_greedy() {
                            return Some(bits);
                        }
                        candidates.push(bits);
                        if candidates.len() >= self.cfg.candidates {
                            break;
                        }
                    }
                    PodemResult::Untestable | PodemResult::Aborted => {
                        stats[phase * 2 + 1] += 1;
                        if phase == 1 {
                            self.failed_targets.insert(idx);
                        }
                    }
                }
            }
            if !candidates.is_empty() {
                break;
            }
        }
        if std::env::var_os("TVS_DEBUG").is_some() {
            eprintln!(
                "[tvs] select k={k} targets={} A:{}/{} B:{}/{}",
                targets.len(),
                stats[0],
                stats[1],
                stats[2],
                stats[3]
            );
        }

        // Phase C: context rotation. Constrained ATPG can be blocked not by
        // the shift size but by the *particular* retained response pattern;
        // applying a cheap filler vector changes that pattern and often
        // unblocks targets at the same k. Accept a random completion of the
        // constraint if it at least differentiates some uncaught fault (the
        // stagnation guard in `run` still bounds fruitless rotation).
        if candidates.is_empty() && !first {
            let uncaught = self.sets.uncaught_indices();
            let faults: Vec<Fault> = uncaught.iter().map(|&i| self.sets.fault(i)).collect();
            for _ in 0..4 {
                let bits = constraint.random_fill(&mut self.rng);
                if self.fsim.detect(&bits, &faults).iter().any(|&h| h) {
                    return Some(bits);
                }
            }
        }

        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return candidates.pop();
        }

        // Greedy scoring. Three kinds of value, in decreasing weight:
        // catches of f_u faults (a difference at a PO or in the next-shift-
        // observed cells), catches/preservation of the *hidden* pool (an
        // erased hidden fault wastes its earlier differentiation — the
        // paper's §6.2 concern), and plain differentiations as tiebreak.
        //
        // Each candidate's score is a pure function of the candidate bits
        // and the (frozen) fault/hidden state, so the candidates fan out
        // over the pool; the strict first-best argmax below runs over the
        // input-ordered score vector, keeping the pick bit-identical at any
        // thread count.
        let uncaught = self.sets.uncaught_indices();
        let faults: Vec<Fault> = uncaught.iter().map(|&i| self.sets.fault(i)).collect();
        let weighted = self.cfg.selection == SelectionStrategy::Weighted;
        let (p, q, l) = (self.p(), self.q(), self.l());
        let watched: Vec<usize> = (0..q).chain(q + l.saturating_sub(k)..q + l).collect();
        // Hidden machines: image and fault per hidden index. The shift-out
        // stream is candidate-independent; only the post-capture fate
        // varies, via the fresh incoming bits.
        let hidden: Vec<(Fault, BitVec)> = self
            .sets
            .hidden_indices()
            .into_iter()
            .map(|idx| {
                (
                    self.sets.fault(idx),
                    self.sets.image(idx).expect("hidden").clone(),
                )
            })
            .collect();
        let ctx = ScoreCtx {
            netlist: self.eng.netlist,
            view: &self.eng.view,
            chain: &self.eng.chain,
            scoap: &self.scoap,
            observe: self.cfg.observe,
            faults: &faults,
            hidden: &hidden,
            watched: &watched,
            weighted,
            p,
            l,
            k,
        };
        let scores = self.pool.map(&candidates, |_, bits| ctx.score(bits));
        let mut best = 0usize;
        let mut best_score = 0u64;
        for (c, &score) in scores.iter().enumerate() {
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        Some(candidates.swap_remove(best))
    }

    /// Simulates `(stimulus, fault)` jobs, outputs in job order: the cached
    /// sequential simulator at `threads <= 1`, the pooled fan-out otherwise.
    /// Both paths compute the same pure function of the jobs.
    fn batch(&mut self, jobs: &[(&BitVec, Fault)]) -> Vec<BitVec> {
        if self.pool.threads() <= 1 {
            let mut outs = Vec::with_capacity(jobs.len());
            for chunk in jobs.chunks(64) {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .map(|&(stim, f)| SlotSpec {
                        stimulus: stim,
                        fault: Some(f),
                    })
                    .collect();
                outs.extend(self.fsim.run_slots(&slots));
            }
            outs
        } else {
            batch_outputs(&self.pool, self.eng.netlist, &self.eng.view, jobs)
        }
    }

    /// Applies one vector: shifts, simulates, classifies every live fault.
    fn apply_cycle(&mut self, k: usize, vector: &BitVec, first: bool) {
        let (p, q, l) = (self.p(), self.q(), self.l());
        let chain_tv = slice_bits(vector, p..p + l);
        let incoming = incoming_from_tv(&chain_tv, k);

        // Fault-free machine.
        let observed_good = if first {
            BitVec::new() // power-up contents are not meaningful data
        } else {
            let sh = self
                .eng
                .chain
                .shift(&self.good_image, &incoming, self.cfg.observe);
            debug_assert_eq!(sh.new_image, chain_tv, "stitched vector must be reachable");
            sh.observed
        };
        let good_out = self.fsim.good_outputs(vector);
        let good_po = slice_bits(&good_out, 0..q);
        let good_resp = slice_bits(&good_out, q..q + l);
        let new_good_image = self.cfg.capture.capture(&chain_tv, &good_resp);

        let mut newly_caught = 0usize;

        // Hidden faults: private shift, private stimulus.
        let hidden = self.sets.hidden_indices();
        let mut live_hidden: Vec<(usize, BitVec)> = Vec::new();
        for idx in hidden {
            if first {
                unreachable!("no hidden faults before the first vector");
            }
            let image = self
                .sets
                .image(idx)
                .expect("hidden fault has image")
                .clone();
            let sh = self.eng.chain.shift(&image, &incoming, self.cfg.observe);
            if sh.observed != observed_good {
                self.sets.set_caught(idx);
                newly_caught += 1;
            } else {
                let mut stim = slice_bits(vector, 0..p);
                stim.extend(sh.new_image.iter());
                live_hidden.push((idx, stim));
            }
        }
        let hidden_jobs: Vec<(&BitVec, Fault)> = live_hidden
            .iter()
            .map(|(idx, stim)| (stim, self.sets.fault(*idx)))
            .collect();
        let outs = self.batch(&hidden_jobs);
        for ((idx, stim), out) in live_hidden.iter().zip(&outs) {
            let f_po = slice_bits(out, 0..q);
            let f_resp = slice_bits(out, q..q + l);
            let f_chain_tv = slice_bits(stim, p..p + l);
            let image = self.cfg.capture.capture(&f_chain_tv, &f_resp);
            match Classification::classify(&good_po, &f_po, &new_good_image, &image) {
                Classification::Caught => {
                    self.sets.set_caught(*idx);
                    newly_caught += 1;
                }
                Classification::Hidden => self.sets.set_hidden(*idx, image),
                Classification::Uncaught => self.sets.set_uncaught(*idx),
            }
        }

        // Uncaught faults: shared stimulus (their machines match the good
        // one so far).
        let uncaught = self.sets.uncaught_indices();
        let uncaught_jobs: Vec<(&BitVec, Fault)> = uncaught
            .iter()
            .map(|&idx| (vector, self.sets.fault(idx)))
            .collect();
        let outs = self.batch(&uncaught_jobs);
        for (&idx, out) in uncaught.iter().zip(&outs) {
            let f_po = slice_bits(out, 0..q);
            let f_resp = slice_bits(out, q..q + l);
            let image = self.cfg.capture.capture(&chain_tv, &f_resp);
            match Classification::classify(&good_po, &f_po, &new_good_image, &image) {
                Classification::Caught => {
                    self.sets.set_caught(idx);
                    newly_caught += 1;
                }
                Classification::Hidden => self.sets.set_hidden(idx, image),
                Classification::Uncaught => {}
            }
        }

        self.good_image = new_good_image;
        self.shifts.push(k);
        tvs_exec::counter("stitch.vectors_stitched").incr();
        self.cycles.push(CycleRecord {
            shift: k,
            vector: vector.clone(),
            observed: observed_good,
            newly_caught,
            hidden_after: self.sets.hidden_count(),
            uncaught_after: self.sets.uncaught_count(),
        });
        // New catches mean previously failed targets may matter again only
        // after an escalation; but a *changed* chain content re-opens
        // constrained possibilities for previously failed targets.
        self.failed_targets.clear();
    }

    /// Closing flush + conventional fallback, then metric assembly.
    fn finish(mut self) -> Result<StitchReport, StitchError> {
        let l = self.l();

        // Closing flush: find, per hidden fault, the shortest flush prefix
        // that reveals it; flush long enough for all of them (exact under
        // any observation transform).
        let mut final_flush = 0usize;
        if !self.cycles.is_empty() {
            let zeros = BitVec::zeros(l);
            let sh_good = self
                .eng
                .chain
                .shift(&self.good_image, &zeros, self.cfg.observe);
            for idx in self.sets.hidden_indices() {
                let image = self.sets.image(idx).expect("hidden").clone();
                let sh_f = self.eng.chain.shift(&image, &zeros, self.cfg.observe);
                let first_diff = (0..l).find(|&t| sh_f.observed.get(t) != sh_good.observed.get(t));
                match first_diff {
                    Some(t) => {
                        final_flush = final_flush.max(t + 1);
                        self.sets.set_caught(idx);
                    }
                    None => self.sets.set_uncaught(idx),
                }
            }
            // Even with no hidden faults the last response is conventionally
            // checked with a closing shift of the last stitch size.
            if final_flush == 0 {
                final_flush = *self.shifts.last().expect("non-empty");
            }
        }

        // Fallback: conventional vectors for whatever is left in f_u.
        let mut extra_vectors: Vec<BitVec> = Vec::new();
        let mut redundant: Vec<Fault> = std::mem::take(&mut self.prescreen_redundant);
        let prescreen_redundant_count = redundant.len();
        let mut aborted: Vec<Fault> = std::mem::take(&mut self.prescreen_aborted);
        let free = Cube::unspecified(self.eng.view.input_count());
        let mut remaining: Vec<usize> = self
            .sets
            .uncaught_indices()
            .into_iter()
            .filter(|i| !self.never_target.contains(i))
            .collect();
        let fallback_faults: Vec<Fault> = remaining.iter().map(|&i| self.sets.fault(i)).collect();
        while let Some(&idx) = remaining.first() {
            match self.podem.generate(self.sets.fault(idx), &free) {
                PodemResult::Test(cube) => {
                    let bits = cube.random_fill(&mut self.rng);
                    let faults: Vec<Fault> =
                        remaining.iter().map(|&i| self.sets.fault(i)).collect();
                    let hits = self.fsim.detect(&bits, &faults);
                    let mut next = Vec::with_capacity(remaining.len());
                    for (slot, &fi) in remaining.iter().enumerate() {
                        if hits[slot] {
                            self.sets.set_caught(fi);
                        } else {
                            next.push(fi);
                        }
                    }
                    debug_assert!(
                        next.len() < remaining.len(),
                        "fallback vector must progress"
                    );
                    if next.len() == remaining.len() {
                        // Defensive: avoid livelock on a sim/ATPG disagreement.
                        aborted.push(self.sets.fault(idx));
                        next.retain(|&i| i != idx);
                    }
                    remaining = next;
                    extra_vectors.push(bits);
                }
                PodemResult::Untestable => {
                    redundant.push(self.sets.fault(idx));
                    remaining.remove(0);
                }
                PodemResult::Aborted => {
                    aborted.push(self.sets.fault(idx));
                    remaining.remove(0);
                }
            }
        }
        // The fallback phase is conventional test application, so it gets
        // conventional reverse-order compaction against the faults it was
        // responsible for.
        if extra_vectors.len() > 1 {
            extra_vectors = tvs_atpg::compact_patterns(
                self.eng.netlist,
                &self.eng.view,
                &fallback_faults,
                &extra_vectors,
            );
        }

        // Baseline for the ratios (generated up front in `new`).
        let baseline = &self.baseline;

        let model = CostModel {
            scan_len: l,
            pi_count: self.p(),
            po_count: self.q(),
        };
        let stitched_costs = if self.shifts.is_empty() {
            // Degenerate: everything handled by fallback vectors.
            model.full_costs(extra_vectors.len())
        } else {
            model.stitched_costs(&self.shifts, final_flush, extra_vectors.len())
        };
        let baseline_costs = model.full_costs(baseline.len());

        // Denominator: every tracked fault that is not proven redundant.
        // Prescreen-redundant faults were never tracked, so only the
        // fallback-found redundancies must be discounted here.
        let fallback_redundant = redundant.len() - prescreen_redundant_count;
        let testable = self.sets.len() - fallback_redundant;
        let coverage = if testable == 0 {
            1.0
        } else {
            self.sets.caught_count() as f64 / testable as f64
        };

        let metrics = CompressionMetrics::new(
            self.cycles.len(),
            extra_vectors.len(),
            baseline.len(),
            stitched_costs,
            baseline_costs,
            coverage,
        );

        tvs_exec::counter("stitch.extra_vectors").add(extra_vectors.len() as u64);
        // Degenerate runs (no stitched cycles, everything on fallback
        // vectors) have no program shape to check.
        if !self.shifts.is_empty() {
            tvs_lint::debug_assert_program_clean(
                &tvs_lint::ProgramSpec {
                    scan_len: l,
                    shifts: self.shifts.clone(),
                    final_flush,
                    extra_vectors: extra_vectors.len(),
                    uncaught_at_fallback: fallback_faults.len(),
                },
                "stitch::finish",
            );
        }
        let hidden_transitions = self.sets.transition_counts();
        Ok(StitchReport {
            cycles: self.cycles,
            shifts: self.shifts,
            final_flush,
            extra_vectors,
            redundant,
            aborted,
            metrics,
            hidden_transitions,
        })
    }
}

/// Simulates `(stimulus, fault)` jobs in 64-slot batches fanned out over
/// the pool, returning the faulty outputs in job order. Every batch builds
/// its own simulator, so outputs are independent of batching and thread
/// count.
fn batch_outputs(
    pool: &ThreadPool,
    netlist: &Netlist,
    view: &ScanView,
    jobs: &[(&BitVec, Fault)],
) -> Vec<BitVec> {
    let chunks: Vec<&[(&BitVec, Fault)]> = jobs.chunks(64).collect();
    pool.map(&chunks, |_, chunk| {
        let mut fsim = FaultSim::new(netlist, view);
        let slots: Vec<SlotSpec<'_>> = chunk
            .iter()
            .map(|&(stim, f)| SlotSpec {
                stimulus: stim,
                fault: Some(f),
            })
            .collect();
        fsim.run_slots(&slots)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Frozen inputs of one candidate-scoring round. [`ScoreCtx::score`] is a
/// pure function of this context plus the candidate bits (each invocation
/// builds its own simulator), which is what lets `select_vector` fan the
/// candidates out over the thread pool.
struct ScoreCtx<'c> {
    netlist: &'c Netlist,
    view: &'c ScanView,
    chain: &'c ScanChain,
    scoap: &'c Scoap,
    observe: ObserveTransform,
    faults: &'c [Fault],
    hidden: &'c [(Fault, BitVec)],
    watched: &'c [usize],
    weighted: bool,
    p: usize,
    l: usize,
    k: usize,
}

impl ScoreCtx<'_> {
    fn score(&self, bits: &BitVec) -> u64 {
        let mut fsim = FaultSim::new(self.netlist, self.view);
        let good = fsim.good_outputs(bits);
        let mut score = 0u64;
        for chunk in self.faults.chunks(63) {
            let slots: Vec<SlotSpec<'_>> = chunk
                .iter()
                .map(|&f| SlotSpec {
                    stimulus: bits,
                    fault: Some(f),
                })
                .collect();
            let outs = fsim.run_slots(&slots);
            for (f, out) in chunk.iter().zip(&outs) {
                let caught = self.watched.iter().any(|&o| out.get(o) != good.get(o));
                let differentiated = caught || out != &good;
                let unit = if self.weighted {
                    self.scoap.fault_hardness(self.netlist, f).max(1)
                } else {
                    1
                };
                if caught {
                    score += unit * 1000;
                } else if differentiated {
                    score += unit;
                }
            }
        }
        if !self.hidden.is_empty() {
            let chain_tv = slice_bits(bits, self.p..self.p + self.l);
            let incoming = incoming_from_tv(&chain_tv, self.k);
            let mut stimuli: Vec<BitVec> = Vec::with_capacity(self.hidden.len());
            for (_, image) in self.hidden {
                let sh = self.chain.shift(image, &incoming, self.observe);
                let mut stim = slice_bits(bits, 0..self.p);
                stim.extend(sh.new_image.iter());
                stimuli.push(stim);
            }
            for (chunk_i, chunk) in self.hidden.chunks(63).enumerate() {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, &(fault, _))| SlotSpec {
                        stimulus: &stimuli[chunk_i * 63 + j],
                        fault: Some(fault),
                    })
                    .collect();
                let outs = fsim.run_slots(&slots);
                for out in &outs {
                    let caught = self.watched.iter().any(|&o| out.get(o) != good.get(o));
                    let kept = out != &good;
                    if caught {
                        score += 1000;
                    } else if kept {
                        score += 30;
                    }
                }
            }
        }
        score
    }
}

/// Extracts `range` of a [`BitVec`] as a new vector.
fn slice_bits(bits: &BitVec, range: std::ops::Range<usize>) -> BitVec {
    range.map(|i| bits.get(i)).collect()
}

/// Converts the desired final content of the first `k` chain cells into
/// scan-in entry order (the bit destined for cell `k-1` enters first).
fn incoming_from_tv(chain_tv: &BitVec, k: usize) -> BitVec {
    (0..k).map(|t| chain_tv.get(k - 1 - t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    fn bv(s: &str) -> BitVec {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn no_scan_chain_is_rejected() {
        let mut b = NetlistBuilder::new("comb");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Not, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        assert!(matches!(
            StitchEngine::new(&n),
            Err(StitchError::NoScanChain)
        ));
    }

    #[test]
    fn fig1_run_reaches_full_coverage() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let report = engine.run(&StitchConfig::default()).unwrap();
        assert!(
            report.metrics.fault_coverage >= 1.0 - 1e-9,
            "coverage {}",
            report.metrics.fault_coverage
        );
        assert_eq!(report.redundant.len(), 1, "the paper's E-F/1");
        assert!(report.aborted.is_empty());
    }

    #[test]
    fn fig1_compresses_versus_baseline() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let cfg = StitchConfig {
            policy: ShiftPolicy::Fixed(2),
            ..StitchConfig::default()
        };
        let report = engine.run(&cfg).unwrap();
        assert!(report.metrics.time_ratio > 0.0);
        // With k = 2 of 3 the stitched stream must beat full shifting per
        // vector unless many extra vectors were needed.
        if report.extra_vectors.is_empty() {
            assert!(
                report.metrics.time_ratio <= 1.05,
                "t = {}",
                report.metrics.time_ratio
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let a = engine.run(&StitchConfig::default()).unwrap();
        let b = engine.run(&StitchConfig::default()).unwrap();
        assert_eq!(a.shifts, b.shifts);
        assert_eq!(a.metrics.stitched_vectors, b.metrics.stitched_vectors);
        assert_eq!(
            a.cycles
                .iter()
                .map(|c| c.vector.clone())
                .collect::<Vec<_>>(),
            b.cycles
                .iter()
                .map(|c| c.vector.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_reproduces_table1_catches() {
        // The paper's schedule: 110, then 2-bit stitches yielding 001, 100,
        // 010, closing with a 2-bit flush.
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let vectors = vec![bv("110"), bv("001"), bv("100"), bv("010")];
        let trace = engine
            .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
            .unwrap();

        // Fault-free responses per the paper.
        let resp: Vec<String> = trace
            .cycles
            .iter()
            .map(|c| c.response.to_string())
            .collect();
        assert_eq!(resp, vec!["111", "010", "000", "010"]);

        // Every fault except the redundant E-F/1 is caught.
        let uncaught: Vec<String> = trace
            .rows
            .iter()
            .filter(|r| r.caught_at.is_none())
            .map(|r| r.fault.display_in(&n))
            .collect();
        assert_eq!(uncaught, vec!["E-F/1".to_string()]);

        // Spot-check the paper's hidden-fault story: F/0 is NOT caught in
        // cycle 0 (its effect hides in cell a) but in cycle 1.
        let f0 = trace
            .rows
            .iter()
            .find(|r| r.fault.display_in(&n) == "F/0")
            .expect("F/0 tracked");
        assert_eq!(f0.caught_at, Some(1));
        assert_eq!(f0.entries[0].response.to_string(), "011");
        // Its mutated second vector is 000 (not the intended 001).
        assert_eq!(f0.entries[1].vector.to_string(), "000");
        assert_eq!(f0.entries[1].response.to_string(), "000");
    }

    #[test]
    fn replay_rejects_impossible_schedules() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        // Second vector 101: cell c would need to hold 1, but the shifted
        // response leaves a 1 only via cell a of response 111 -> c = 1 works;
        // pick something genuinely inconsistent: 011 needs c = 1 as well...
        // response 111 shifted by 2 gives c = 1, cells a,b free. So any
        // second vector with c = 0 is impossible.
        let vectors = vec![bv("110"), bv("010")];
        let err = engine
            .replay(&vectors, &[3, 2], 2, &StitchConfig::default())
            .unwrap_err();
        assert!(matches!(err, StitchError::ReplayMismatch { cycle: 1 }));
    }

    #[test]
    fn hidden_faults_appear_during_fig1_replay() {
        let n = fig1();
        let engine = StitchEngine::new(&n).unwrap();
        let vectors = vec![bv("110"), bv("001"), bv("100"), bv("010")];
        let trace = engine
            .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
            .unwrap();
        // F/1 and D-F/1 mutate the third vector to 101 per the paper.
        for name in ["F/1", "D-F/1"] {
            let row = trace.rows.iter().find(|r| r.fault.display_in(&n) == name);
            if let Some(row) = row {
                // (collapsing may merge D-F/1 into another representative)
                assert_eq!(row.caught_at, Some(2), "{name}");
                assert_eq!(row.entries[2].vector.to_string(), "101", "{name}");
            }
        }
    }
}
