//! The stitched test generation engine (the paper's Fig. 2 flow).
//!
//! This module is a thin facade: it owns the immutable per-circuit context
//! (netlist, scan view, scan chain, collapsed fault list) and hands it to
//! the staged cycle pipeline:
//!
//! * [`config`](crate::config) — [`StitchConfig`](crate::StitchConfig) and
//!   the snapshot fingerprint;
//! * [`state`](crate::state) — the mutable `RunState` with its
//!   checkpoint/restore glue and the persistent simulation session;
//! * [`vector`](crate::vector) — constraint cube, target ordering,
//!   candidate generation and greedy scoring;
//! * [`cycle`](crate::cycle) — shift/apply/classify of one stitched cycle;
//! * [`run`](crate::run) — the driver loop, termination taxonomy and
//!   report assembly;
//! * [`replay`](crate::replay) — Table 1 reproduction on a fixed schedule.

use tvs_fault::FaultList;
use tvs_netlist::{Netlist, ScanView};
use tvs_scan::ScanChain;

use crate::run::StitchError;

/// The stitched test generation engine.
///
/// # Examples
///
/// ```
/// use tvs_netlist::{GateKind, NetlistBuilder};
/// use tvs_stitch::{StitchConfig, StitchEngine};
///
/// // The paper's Figure 1 circuit.
/// let mut b = NetlistBuilder::new("fig1");
/// b.add_dff("a", "F")?;
/// b.add_dff("b", "E")?;
/// b.add_dff("c", "D")?;
/// b.add_gate("D", GateKind::And, &["a", "b"])?;
/// b.add_gate("E", GateKind::Or, &["b", "c"])?;
/// b.add_gate("F", GateKind::And, &["D", "E"])?;
/// let netlist = b.build()?;
///
/// let engine = StitchEngine::new(&netlist)?;
/// let report = engine.run(&StitchConfig::default())?;
/// assert!(report.metrics.fault_coverage >= 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StitchEngine<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) view: ScanView,
    pub(crate) chain: ScanChain,
    pub(crate) faults: FaultList,
}

impl<'a> StitchEngine<'a> {
    /// Prepares an engine for a netlist: builds the scan view and the
    /// collapsed fault list.
    ///
    /// # Errors
    ///
    /// [`StitchError::NoScanChain`] for purely combinational circuits,
    /// [`StitchError::Netlist`] if levelization fails.
    pub fn new(netlist: &'a Netlist) -> Result<Self, StitchError> {
        tvs_lint::debug_assert_netlist_clean(netlist, "stitch::StitchEngine::new");
        if netlist.dff_count() == 0 {
            return Err(StitchError::NoScanChain);
        }
        let view = netlist.scan_view()?;
        Ok(StitchEngine {
            netlist,
            view,
            chain: ScanChain::new(netlist.dff_count()),
            faults: FaultList::collapsed(netlist),
        })
    }

    /// The scan view the engine operates on.
    pub fn view(&self) -> &ScanView {
        &self.view
    }

    /// The collapsed fault list the engine tracks.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }
}
