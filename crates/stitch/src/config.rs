//! Configuration of a stitched run and its snapshot fingerprint.

use tvs_atpg::{AtpgConfig, PodemConfig};
use tvs_scan::{CaptureTransform, ObserveTransform};

use crate::snapshot::fnv1a;
use crate::{ShiftPolicy, StrategyId};

/// Configuration of a stitched test generation run.
#[derive(Debug, Clone)]
pub struct StitchConfig {
    /// Shift-size policy (paper §6.1).
    pub policy: ShiftPolicy,
    /// The strategy driving fault ordering, candidate scoring and the
    /// shift schedule (paper §6.3 plus the strategy-layer additions; see
    /// [`StrategyId`]).
    pub strategy: StrategyId,
    /// Capture transform (paper §6.2, VXOR).
    pub capture: CaptureTransform,
    /// Observation transform (paper §6.2, HXOR).
    pub observe: ObserveTransform,
    /// Seed for everything random (fill, random ordering).
    pub seed: u64,
    /// PODEM settings for constrained generation.
    pub podem: PodemConfig,
    /// Upper bound on constrained-ATPG attempts per cycle (failures are
    /// cached per shift size, so the engine normally scans the whole of
    /// `f_u` before declaring a shift size exhausted).
    pub max_targets_per_cycle: usize,
    /// How many candidate vectors the greedy strategies score per cycle.
    pub candidates: usize,
    /// Absolute cap on stitched cycles (safety valve).
    pub max_cycles: usize,
    /// Consecutive zero-catch cycles tolerated before the current shift
    /// size is treated as exhausted.
    pub stagnation_limit: usize,
    /// Window (in cycles) for the marginal-efficiency check: when the
    /// recent catches-per-memory-bit rate falls below the baseline flow's
    /// overall rate times [`efficiency_margin`](Self::efficiency_margin),
    /// the current shift size is treated as exhausted — the compacted
    /// fallback is the cheaper tool past that point.
    pub efficiency_window: usize,
    /// Discount on the baseline rate used by the marginal-efficiency check;
    /// below 1 because the fallback's *marginal* productivity on the
    /// leftover hard faults is well below the baseline's average.
    pub efficiency_margin: f64,
    /// Baseline ATPG settings (the `aTV` reference run).
    pub baseline: AtpgConfig,
    /// Optional work budget in deterministic work units (PODEM backtracks,
    /// simulation slots, stitch cycles — never wall clock, which would break
    /// determinism). Checked at stage boundaries; an exhausted budget ends
    /// the run early with a valid partial program and
    /// [`Termination::BudgetExhausted`](crate::Termination::BudgetExhausted)
    /// carrying the residual `f_u`.
    pub budget: Option<u64>,
    /// Worker threads for the parallelizable stages (prescreen verdicts,
    /// candidate scoring, classification sweeps). `1` (the default) runs
    /// everything on the calling thread; any value produces bit-identical
    /// results — parallel stages reduce in input order (DESIGN.md §6.4).
    pub threads: usize,
}

impl StitchConfig {
    /// FNV fingerprint of the semantic configuration fields — everything
    /// that shapes the result stream except `threads` (results are
    /// thread-count independent by construction) and `budget` (a resumed
    /// run may receive a fresh allowance).
    ///
    /// This is the value [`Snapshot`](crate::Snapshot)s embed for
    /// compatibility checks, and one half of the serve layer's
    /// content-addressed artifact key (which hashes the budget back in,
    /// since an exhausted budget *does* change the emitted artifact).
    pub fn fingerprint(&self) -> u64 {
        config_fingerprint(self)
    }
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            policy: ShiftPolicy::default(),
            strategy: StrategyId::default(),
            capture: CaptureTransform::default(),
            observe: ObserveTransform::default(),
            seed: 0x5717C4,
            podem: PodemConfig::default(),
            max_targets_per_cycle: 192,
            candidates: 8,
            max_cycles: 4096,
            stagnation_limit: 6,
            efficiency_window: 6,
            efficiency_margin: 0.5,
            baseline: AtpgConfig::default(),
            budget: None,
            threads: 1,
        }
    }
}

/// Fingerprint of the semantic configuration fields, for snapshot
/// compatibility checks: everything that shapes the result stream except
/// `threads` (results are thread-count independent by construction) and
/// `budget` (a resumed run may receive a fresh allowance).
pub(crate) fn config_fingerprint(cfg: &StitchConfig) -> u64 {
    let text = format!(
        "{}|{}|{:?}|{:?}|{}|{:?}|{}|{}|{}|{}|{}|{:016x}|{:?}",
        cfg.policy.fingerprint_text(),
        cfg.strategy.resolve().fingerprint_text(),
        cfg.capture,
        cfg.observe,
        cfg.seed,
        cfg.podem,
        cfg.max_targets_per_cycle,
        cfg.candidates,
        cfg.max_cycles,
        cfg.stagnation_limit,
        cfg.efficiency_window,
        cfg.efficiency_margin.to_bits(),
        cfg.baseline,
    );
    fnv1a(text.as_bytes())
}
