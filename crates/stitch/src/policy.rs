//! Shift-size policies (paper §6.1).

/// An exact fraction `num / den` of the scan length.
///
/// Shift schedules used to carry `f64` fractions; every consumer of the
/// schedule (config fingerprints, snapshots, strategy genomes) wants a
/// serialization that never goes through floating point, so the schedule is
/// now rational end to end. All arithmetic is `u128`-widened ceiling
/// division — exact for every scan length that fits in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    /// Numerator.
    pub num: u64,
    /// Denominator (must be non-zero).
    pub den: u64,
}

impl Ratio {
    /// A new ratio.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub const fn new(num: u64, den: u64) -> Ratio {
        assert!(den != 0, "ratio denominator must be non-zero");
        Ratio { num, den }
    }

    /// `⌈n · num / den⌉`, saturating at `usize::MAX`.
    pub fn scale_ceil(&self, n: usize) -> usize {
        let num = self.num as u128;
        let den = self.den as u128;
        let scaled = (n as u128) * num;
        let ceiled = scaled.div_ceil(den);
        usize::try_from(ceiled).unwrap_or(usize::MAX)
    }

    /// Whether the ratio is within `(0, 1]`.
    pub fn is_proper(&self) -> bool {
        self.num > 0 && self.num <= self.den
    }

    /// Whether the ratio strictly exceeds one.
    pub fn exceeds_one(&self) -> bool {
        self.num > self.den
    }

    /// `self >= other`, exactly (cross-multiplied in `u128`).
    pub fn ge(&self, other: &Ratio) -> bool {
        (self.num as u128) * (other.den as u128) >= (other.num as u128) * (self.den as u128)
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// How many bits are shifted per stitched cycle.
///
/// * [`Fixed`](ShiftPolicy::Fixed) — a constant `k`, as in the three `info`
///   columns of the paper's Table 2.
/// * [`Variable`](ShiftPolicy::Variable) — start small and grow whenever
///   constrained ATPG dries up, the paper's winning strategy. The schedule
///   (start at `L/8`, double on exhaustion, cap at `L/2`) is our choice —
///   the paper does not specify one; see DESIGN.md §7. Growth is
///   **monotone**, which is also what makes eager caught-classification
///   sound under direct observation.
///
/// # Examples
///
/// ```
/// use tvs_stitch::ShiftPolicy;
///
/// let policy = ShiftPolicy::default();
/// let k0 = policy.initial(64);
/// assert_eq!(k0, 8); // 64 / 8
/// assert_eq!(policy.escalate(64, k0), Some(16));
/// assert_eq!(policy.escalate(64, 64), None); // nowhere left to grow
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShiftPolicy {
    /// Shift exactly `k` bits every cycle.
    Fixed(usize),
    /// Start at `max(1, ⌈L · start⌉)` and multiply by `growth` (at least
    /// +1) whenever no new fault can be caught, up to `⌈L · max⌉`. Beyond
    /// the cap a stitched cycle retains so little of the previous response
    /// that a conventional (compactable) fallback vector strictly dominates
    /// it, so exhaustion at the cap hands the remaining faults to the
    /// fallback phase.
    Variable {
        /// Initial shift size as a fraction of the scan length.
        start: Ratio,
        /// Multiplicative growth factor applied on exhaustion.
        growth: Ratio,
        /// Largest shift size as a fraction of the scan length.
        max: Ratio,
    },
}

impl Default for ShiftPolicy {
    /// The paper's preferred scheme: variable shift, here starting at
    /// `L/8` and doubling on exhaustion up to `L/2` (the tuned schedule —
    /// the paper does not specify one; see DESIGN.md §7).
    fn default() -> Self {
        ShiftPolicy::Variable {
            start: Ratio::new(1, 8),
            growth: Ratio::new(2, 1),
            max: Ratio::new(1, 2),
        }
    }
}

impl ShiftPolicy {
    /// The shift size for the first stitched cycle (the initial full
    /// shift-in is always `scan_len` and not governed by the policy).
    ///
    /// # Panics
    ///
    /// Panics if a `Fixed` size is zero or exceeds the scan length, or if a
    /// `Variable` configuration is out of range.
    pub fn initial(&self, scan_len: usize) -> usize {
        match *self {
            ShiftPolicy::Fixed(k) => {
                assert!(
                    k >= 1 && k <= scan_len,
                    "fixed shift {k} out of range 1..={scan_len}"
                );
                k
            }
            ShiftPolicy::Variable { start, growth, max } => {
                assert!(start.is_proper(), "start fraction must be in (0, 1]");
                assert!(growth.exceeds_one(), "growth factor must exceed 1");
                assert!(
                    max.ge(&start) && max.is_proper(),
                    "max fraction must be in [start, 1]"
                );
                start.scale_ceil(scan_len).clamp(1, scan_len)
            }
        }
    }

    /// The next (strictly larger) shift size after exhaustion, or `None`
    /// when no escalation is possible (fixed policies never escalate; a
    /// variable policy caps at `⌈L · max⌉`).
    pub fn escalate(&self, scan_len: usize, current: usize) -> Option<usize> {
        match *self {
            ShiftPolicy::Fixed(_) => None,
            ShiftPolicy::Variable { growth, max, .. } => {
                let cap = max.scale_ceil(scan_len).clamp(1, scan_len);
                if current >= cap {
                    None
                } else {
                    let grown = growth.scale_ceil(current).max(current + 1);
                    Some(grown.min(cap))
                }
            }
        }
    }

    /// The escalation ceiling `⌈L · max⌉` (the scan length itself for fixed
    /// policies, which never escalate past their constant).
    pub fn cap(&self, scan_len: usize) -> usize {
        match *self {
            ShiftPolicy::Fixed(k) => k,
            ShiftPolicy::Variable { max, .. } => max.scale_ceil(scan_len).clamp(1, scan_len),
        }
    }

    /// A float-free, fingerprint-stable rendering of the policy.
    ///
    /// This text feeds [`config_fingerprint`](crate::StitchConfig) and
    /// therefore the snapshot header and the serving-layer `ArtifactKey`.
    pub fn fingerprint_text(&self) -> String {
        match *self {
            ShiftPolicy::Fixed(k) => format!("fixed:{k}"),
            ShiftPolicy::Variable { start, growth, max } => {
                format!("var:{start}:{growth}:{max}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_constant() {
        let p = ShiftPolicy::Fixed(5);
        assert_eq!(p.initial(20), 5);
        assert_eq!(p.escalate(20, 5), None);
        assert_eq!(p.cap(20), 5);
    }

    #[test]
    fn variable_policy_grows_monotonically_to_cap() {
        let p = ShiftPolicy::default();
        let l = 100;
        let mut k = p.initial(l);
        assert_eq!(k, 13); // ceil(100/8)
        let mut seen = vec![k];
        while let Some(next) = p.escalate(l, k) {
            assert!(next > k, "monotone growth");
            k = next;
            seen.push(k);
        }
        assert_eq!(k, 50, "caps at L * max");
        assert!(seen.len() >= 3, "several escalation steps: {seen:?}");
    }

    #[test]
    fn tiny_chains_stay_in_range() {
        let p = ShiftPolicy::default();
        assert_eq!(p.initial(1), 1);
        assert_eq!(p.escalate(1, 1), None);
        assert_eq!(p.initial(3), 1);
        assert_eq!(p.escalate(3, 1), Some(2));
        assert_eq!(p.escalate(3, 2), None, "cap = ceil(3 / 2) = 2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_fixed_shift_panics() {
        ShiftPolicy::Fixed(10).initial(5);
    }

    /// The rational schedule is bit-identical to the `f64` formulas it
    /// replaced (`(L·f).ceil()` with `f = 1/8, 2.0, 1/2`), pinned across
    /// every scan length up to 4096 and every escalation step.
    #[test]
    fn rational_default_matches_the_old_float_schedule() {
        for l in 1usize..=4096 {
            let p = ShiftPolicy::default();
            let old_initial = ((l as f64 * (1.0 / 8.0)).ceil() as usize).clamp(1, l);
            let mut k = p.initial(l);
            assert_eq!(k, old_initial, "initial at L={l}");
            let old_cap = ((l as f64 * 0.5).ceil() as usize).clamp(1, l);
            loop {
                let old_next = if k >= old_cap {
                    None
                } else {
                    Some((((k as f64 * 2.0).ceil() as usize).max(k + 1)).min(old_cap))
                };
                let next = p.escalate(l, k);
                assert_eq!(next, old_next, "escalate at L={l}, k={k}");
                match next {
                    Some(n) => k = n,
                    None => break,
                }
            }
        }
    }

    #[test]
    fn ratio_arithmetic_is_exact() {
        assert_eq!(Ratio::new(1, 8).scale_ceil(64), 8);
        assert_eq!(Ratio::new(1, 8).scale_ceil(100), 13);
        assert_eq!(Ratio::new(1, 2).scale_ceil(3), 2);
        assert_eq!(Ratio::new(2, 1).scale_ceil(13), 26);
        assert_eq!(Ratio::new(1, 3).scale_ceil(0), 0);
        assert!(Ratio::new(1, 2).ge(&Ratio::new(1, 8)));
        assert!(!Ratio::new(1, 8).ge(&Ratio::new(1, 2)));
        assert!(Ratio::new(3, 3).is_proper());
        assert!(!Ratio::new(4, 3).is_proper());
        assert!(Ratio::new(4, 3).exceeds_one());
    }

    #[test]
    fn fingerprint_text_never_serializes_floats() {
        assert_eq!(ShiftPolicy::Fixed(7).fingerprint_text(), "fixed:7");
        assert_eq!(ShiftPolicy::default().fingerprint_text(), "var:1/8:2/1:1/2");
    }
}
