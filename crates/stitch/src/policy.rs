//! Shift-size policies (paper §6.1).

/// How many bits are shifted per stitched cycle.
///
/// * [`Fixed`](ShiftPolicy::Fixed) — a constant `k`, as in the three `info`
///   columns of the paper's Table 2.
/// * [`Variable`](ShiftPolicy::Variable) — start small and grow whenever
///   constrained ATPG dries up, the paper's winning strategy. The schedule
///   (start at `L/8`, double on exhaustion, cap at `L/2`) is our choice —
///   the paper does not specify one; see DESIGN.md §7. Growth is
///   **monotone**, which is also what makes eager caught-classification
///   sound under direct observation.
///
/// # Examples
///
/// ```
/// use tvs_stitch::ShiftPolicy;
///
/// let policy = ShiftPolicy::default();
/// let k0 = policy.initial(64);
/// assert_eq!(k0, 8); // 64 / 8
/// assert_eq!(policy.escalate(64, k0), Some(16));
/// assert_eq!(policy.escalate(64, 64), None); // nowhere left to grow
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShiftPolicy {
    /// Shift exactly `k` bits every cycle.
    Fixed(usize),
    /// Start at `max(1, ⌈L · start_fraction⌉)` and multiply by `growth`
    /// (at least +1) whenever no new fault can be caught, up to
    /// `⌈L · max_fraction⌉`. Beyond the cap a stitched cycle retains so
    /// little of the previous response that a conventional (compactable)
    /// fallback vector strictly dominates it, so exhaustion at the cap
    /// hands the remaining faults to the fallback phase.
    Variable {
        /// Initial shift size as a fraction of the scan length.
        start_fraction: f64,
        /// Multiplicative growth factor applied on exhaustion.
        growth: f64,
        /// Largest shift size as a fraction of the scan length.
        max_fraction: f64,
    },
}

impl Default for ShiftPolicy {
    /// The paper's preferred scheme: variable shift, here starting at
    /// `L/8` and doubling on exhaustion up to `L/2` (the tuned schedule —
    /// the paper does not specify one; see DESIGN.md §7).
    fn default() -> Self {
        ShiftPolicy::Variable {
            start_fraction: 1.0 / 8.0,
            growth: 2.0,
            max_fraction: 0.5,
        }
    }
}

impl ShiftPolicy {
    /// The shift size for the first stitched cycle (the initial full
    /// shift-in is always `scan_len` and not governed by the policy).
    ///
    /// # Panics
    ///
    /// Panics if a `Fixed` size is zero or exceeds the scan length, or if a
    /// `Variable` configuration is out of range.
    pub fn initial(&self, scan_len: usize) -> usize {
        match *self {
            ShiftPolicy::Fixed(k) => {
                assert!(
                    k >= 1 && k <= scan_len,
                    "fixed shift {k} out of range 1..={scan_len}"
                );
                k
            }
            ShiftPolicy::Variable {
                start_fraction,
                growth,
                max_fraction,
            } => {
                assert!(
                    start_fraction > 0.0 && start_fraction <= 1.0,
                    "start fraction must be in (0, 1]"
                );
                assert!(growth > 1.0, "growth factor must exceed 1");
                assert!(
                    max_fraction >= start_fraction && max_fraction <= 1.0,
                    "max fraction must be in [start_fraction, 1]"
                );
                ((scan_len as f64 * start_fraction).ceil() as usize).clamp(1, scan_len)
            }
        }
    }

    /// The next (strictly larger) shift size after exhaustion, or `None`
    /// when no escalation is possible (fixed policies never escalate; a
    /// variable policy caps at `⌈L · max_fraction⌉`).
    pub fn escalate(&self, scan_len: usize, current: usize) -> Option<usize> {
        match *self {
            ShiftPolicy::Fixed(_) => None,
            ShiftPolicy::Variable {
                growth,
                max_fraction,
                ..
            } => {
                let cap = ((scan_len as f64 * max_fraction).ceil() as usize).clamp(1, scan_len);
                if current >= cap {
                    None
                } else {
                    let grown = ((current as f64 * growth).ceil() as usize).max(current + 1);
                    Some(grown.min(cap))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_constant() {
        let p = ShiftPolicy::Fixed(5);
        assert_eq!(p.initial(20), 5);
        assert_eq!(p.escalate(20, 5), None);
    }

    #[test]
    fn variable_policy_grows_monotonically_to_cap() {
        let p = ShiftPolicy::default();
        let l = 100;
        let mut k = p.initial(l);
        assert_eq!(k, 13); // ceil(100/8)
        let mut seen = vec![k];
        while let Some(next) = p.escalate(l, k) {
            assert!(next > k, "monotone growth");
            k = next;
            seen.push(k);
        }
        assert_eq!(k, 50, "caps at L * max_fraction");
        assert!(seen.len() >= 3, "several escalation steps: {seen:?}");
    }

    #[test]
    fn tiny_chains_stay_in_range() {
        let p = ShiftPolicy::default();
        assert_eq!(p.initial(1), 1);
        assert_eq!(p.escalate(1, 1), None);
        assert_eq!(p.initial(3), 1);
        assert_eq!(p.escalate(3, 1), Some(2));
        assert_eq!(p.escalate(3, 2), None, "cap = ceil(3 * 0.5) = 2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_fixed_shift_panics() {
        ShiftPolicy::Fixed(10).initial(5);
    }
}
