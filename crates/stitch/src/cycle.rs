//! The apply/classify stage of the cycle pipeline: shift the chain,
//! simulate every live faulty machine against the cycle's good baseline,
//! and move faults between `f_c` / `f_h` / `f_u`.

use tvs_exec::{inject, TaskPanic, ThreadPool};
use tvs_logic::BitVec;
use tvs_netlist::{Netlist, ScanView};

use tvs_fault::{Fault, SimSession, SlotSpec};

use crate::state::RunState;
use crate::{Classification, CycleRecord};

impl RunState<'_, '_> {
    /// Simulates `(stimulus, fault)` jobs, outputs in job order: the
    /// persistent session at `threads <= 1` (incremental against the seeded
    /// cycle baseline), the pooled fan-out otherwise (each worker seeds its
    /// own session with `baseline` and sweeps incrementally from there).
    /// Both paths compute the same pure function of the jobs, and both
    /// degrade to the same deterministic [`TaskPanic`] when a worker dies —
    /// the lowest-index failure wins at any thread count.
    pub(crate) fn batch(
        &mut self,
        jobs: &[(&BitVec, Fault)],
        baseline: &BitVec,
    ) -> Result<Vec<BitVec>, TaskPanic> {
        // The injection decision is taken here on the caller side, so the
        // sequential hit counter advances identically at any thread count;
        // the parallel path then realizes it as a genuine worker panic.
        let boom = !jobs.is_empty() && inject::fire("stitch.sim.batch");
        if self.pool.threads() <= 1 {
            if boom {
                return Err(TaskPanic {
                    index: 0,
                    message: inject::panic_message("stitch.sim.batch"),
                });
            }
            let slots: Vec<SlotSpec<'_>> = jobs
                .iter()
                .map(|&(stim, f)| SlotSpec {
                    stimulus: stim,
                    fault: Some(f),
                })
                .collect();
            match self.session.run_jobs(&slots) {
                Ok(outs) => Ok(outs),
                Err(_) => unreachable!("engine stimuli always match the scan view"),
            }
        } else {
            batch_outputs(
                &self.pool,
                self.eng.netlist,
                &self.eng.view,
                baseline,
                jobs,
                boom,
            )
        }
    }

    /// Applies one vector: shifts, simulates, classifies every live fault.
    ///
    /// On a worker panic the cycle is not recorded; the hidden-set updates
    /// made before the failed batch stand. That partial effect is
    /// deterministic (the surviving state is a pure function of the inputs
    /// and the panic index, which is thread-count independent) and the
    /// salvaged program stays valid — it merely under-reports the final
    /// cycle's catches.
    pub(crate) fn apply_cycle(
        &mut self,
        k: usize,
        vector: &BitVec,
        first: bool,
    ) -> Result<(), TaskPanic> {
        let (p, q, l) = (self.p(), self.q(), self.l());
        let chain_tv = vector.slice(p..p + l);
        let incoming = chain_tv.rev_slice(0..k);

        // Fault-free machine.
        let observed_good = if first {
            BitVec::new() // power-up contents are not meaningful data
        } else {
            let sh = self
                .eng
                .chain
                .shift(&self.good_image, &incoming, self.cfg.observe);
            debug_assert_eq!(sh.new_image, chain_tv, "stitched vector must be reachable");
            sh.observed
        };
        // Seeding the session baseline here is what makes every faulty
        // sweep of this cycle incremental: the hidden machines differ from
        // the good one in a few chain bits, the uncaught machines only in
        // their injections.
        let good_out = match self.session.baseline(vector) {
            Ok(out) => out,
            Err(_) => unreachable!("engine stimuli always match the scan view"),
        };
        let good_po = good_out.slice(0..q);
        let good_resp = good_out.slice(q..q + l);
        let new_good_image = self.cfg.capture.capture(&chain_tv, &good_resp);

        let mut newly_caught = 0usize;

        // Hidden faults: private shift, private stimulus.
        let hidden = self.sets.hidden_indices();
        let mut live_hidden: Vec<(usize, BitVec)> = Vec::new();
        for idx in hidden {
            if first {
                unreachable!("no hidden faults before the first vector");
            }
            // Defensive: a hidden fault always carries an image; skip the
            // entry rather than abort if that invariant is ever violated.
            let Some(image) = self.sets.image(idx).cloned() else {
                continue;
            };
            let mut image = image;
            // Chaos hook: corrupt one bit of this fault's private chain
            // image (keyed by fault index in this sequential loop, so the
            // corruption is deterministic at any thread count).
            if let Some(bit) = inject::flip_bit("stitch.hidden.image", idx as u64, image.len()) {
                image.set(bit, !image.get(bit));
            }
            let sh = self.eng.chain.shift(&image, &incoming, self.cfg.observe);
            if sh.observed != observed_good {
                self.sets.set_caught(idx);
                newly_caught += 1;
            } else {
                let mut stim = vector.slice(0..p);
                stim.extend(sh.new_image.iter());
                live_hidden.push((idx, stim));
            }
        }
        let hidden_jobs: Vec<(&BitVec, Fault)> = live_hidden
            .iter()
            .map(|(idx, stim)| (stim, self.sets.fault(*idx)))
            .collect();
        self.budget.charge(hidden_jobs.len() as u64);
        let outs = self.batch(&hidden_jobs, vector)?;
        for ((idx, stim), out) in live_hidden.iter().zip(&outs) {
            let f_po = out.slice(0..q);
            let f_resp = out.slice(q..q + l);
            let f_chain_tv = stim.slice(p..p + l);
            let image = self.cfg.capture.capture(&f_chain_tv, &f_resp);
            match Classification::classify(&good_po, &f_po, &new_good_image, &image) {
                Classification::Caught => {
                    self.sets.set_caught(*idx);
                    newly_caught += 1;
                }
                Classification::Hidden => self.sets.set_hidden(*idx, image),
                Classification::Uncaught => self.sets.set_uncaught(*idx),
            }
        }

        // Uncaught faults: shared stimulus (their machines match the good
        // one so far).
        let uncaught = self.sets.uncaught_indices();
        let uncaught_jobs: Vec<(&BitVec, Fault)> = uncaught
            .iter()
            .map(|&idx| (vector, self.sets.fault(idx)))
            .collect();
        self.budget.charge(uncaught_jobs.len() as u64 + 1);
        let outs = self.batch(&uncaught_jobs, vector)?;
        for (&idx, out) in uncaught.iter().zip(&outs) {
            let f_po = out.slice(0..q);
            let f_resp = out.slice(q..q + l);
            let image = self.cfg.capture.capture(&chain_tv, &f_resp);
            match Classification::classify(&good_po, &f_po, &new_good_image, &image) {
                Classification::Caught => {
                    self.sets.set_caught(idx);
                    newly_caught += 1;
                }
                Classification::Hidden => self.sets.set_hidden(idx, image),
                Classification::Uncaught => {}
            }
        }

        self.good_image = new_good_image;
        self.shifts.push(k);
        tvs_exec::counter("stitch.vectors_stitched").incr();
        self.cycles.push(CycleRecord {
            shift: k,
            vector: vector.clone(),
            observed: observed_good,
            newly_caught,
            hidden_after: self.sets.hidden_count(),
            uncaught_after: self.sets.uncaught_count(),
        });
        // New catches mean previously failed targets may matter again only
        // after an escalation; but a *changed* chain content re-opens
        // constrained possibilities for previously failed targets.
        self.failed_targets.clear();
        Ok(())
    }
}

/// Simulates `(stimulus, fault)` jobs in 64-slot batches fanned out over
/// the pool, returning the faulty outputs in job order. Every batch builds
/// its own session seeded with the cycle's `baseline` vector, so each sweep
/// is incremental yet outputs stay independent of batching and thread
/// count. With `boom` set (an armed `stitch.sim.batch` injection), the
/// first chunk's worker panics; the captured [`TaskPanic`] then matches the
/// sequential path's bit for bit.
fn batch_outputs(
    pool: &ThreadPool,
    netlist: &Netlist,
    view: &ScanView,
    baseline: &BitVec,
    jobs: &[(&BitVec, Fault)],
    boom: bool,
) -> Result<Vec<BitVec>, TaskPanic> {
    let chunks: Vec<&[(&BitVec, Fault)]> = jobs.chunks(64).collect();
    Ok(pool
        .try_map(&chunks, |i, chunk| {
            if boom && i == 0 {
                inject::panic_now("stitch.sim.batch");
            }
            let mut session = SimSession::new(netlist, view);
            let slots: Vec<SlotSpec<'_>> = chunk
                .iter()
                .map(|&(stim, f)| SlotSpec {
                    stimulus: stim,
                    fault: Some(f),
                })
                .collect();
            match session
                .baseline(baseline)
                .and_then(|_| session.run_slots(&slots))
            {
                Ok(outs) => outs,
                Err(_) => unreachable!("engine stimuli always match the scan view"),
            }
        })?
        .into_iter()
        .flatten()
        .collect())
}
