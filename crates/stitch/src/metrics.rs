//! Per-cycle records and the compression metrics of the paper's tables.

use std::fmt;

use tvs_logic::BitVec;
use tvs_scan::TestCosts;

/// What happened in one stitched test cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleRecord {
    /// Bits shifted in this cycle (`scan_len` for the first vector).
    pub shift: usize,
    /// The full test vector applied (PIs then chain contents, chain cell 0
    /// first).
    pub vector: BitVec,
    /// What the tester observed during this cycle's shift (expected,
    /// fault-free values).
    pub observed: BitVec,
    /// Faults newly moved to `f_c` this cycle.
    pub newly_caught: usize,
    /// `|f_h|` after the cycle.
    pub hidden_after: usize,
    /// `|f_u|` after the cycle.
    pub uncaught_after: usize,
}

/// The headline numbers of the paper's Tables 2–5 for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionMetrics {
    /// Stitched vectors applied — the paper's `TV` column.
    pub stitched_vectors: usize,
    /// Fallback full-shift vectors — the paper's `ex` column.
    pub extra_vectors: usize,
    /// Baseline full-shift vector count — the paper's `aTV` column.
    pub baseline_vectors: usize,
    /// Absolute costs of the stitched scheme.
    pub stitched_costs: TestCosts,
    /// Absolute costs of the baseline scheme.
    pub baseline_costs: TestCosts,
    /// Tester-memory ratio — the paper's `m` column.
    pub memory_ratio: f64,
    /// Test-application-time ratio — the paper's `t` column.
    pub time_ratio: f64,
    /// Attainable fault coverage achieved (1.0 = every irredundant,
    /// non-aborted fault caught).
    pub fault_coverage: f64,
}

impl CompressionMetrics {
    /// Builds the metrics from raw counts and costs.
    pub fn new(
        stitched_vectors: usize,
        extra_vectors: usize,
        baseline_vectors: usize,
        stitched_costs: TestCosts,
        baseline_costs: TestCosts,
        fault_coverage: f64,
    ) -> Self {
        let (memory_ratio, time_ratio) = stitched_costs.ratios_vs(&baseline_costs);
        CompressionMetrics {
            stitched_vectors,
            extra_vectors,
            baseline_vectors,
            stitched_costs,
            baseline_costs,
            memory_ratio,
            time_ratio,
            fault_coverage,
        }
    }
}

impl fmt::Display for CompressionMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TV={} ex={} aTV={} m={:.2} t={:.2} coverage={:.4}",
            self.stitched_vectors,
            self.extra_vectors,
            self.baseline_vectors,
            self.memory_ratio,
            self.time_ratio,
            self.fault_coverage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_follow_costs() {
        let st = TestCosts {
            shift_cycles: 11,
            memory_bits: 17,
        };
        let base = TestCosts {
            shift_cycles: 15,
            memory_bits: 24,
        };
        let m = CompressionMetrics::new(4, 0, 4, st, base, 1.0);
        assert!((m.time_ratio - 11.0 / 15.0).abs() < 1e-12);
        assert!((m.memory_ratio - 17.0 / 24.0).abs() < 1e-12);
        let text = m.to_string();
        assert!(text.contains("TV=4"), "{text}");
        assert!(text.contains("m=0.71"), "{text}");
    }
}
