//! The three disjoint fault sets of the paper's §4: `f_c`, `f_h`, `f_u`.

use tvs_logic::BitVec;

use tvs_fault::Fault;

/// Which of the three sets a fault currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultState {
    /// `f_u` — not yet differentiated by any applied vector.
    Uncaught,
    /// `f_h` — differentiated, but every differentiating bit is still inside
    /// the scan chain; carries a faulty chain image.
    Hidden,
    /// `f_c` — observed at the tester; final.
    Caught,
}

/// A hidden fault together with its private chain image.
///
/// The image is what the *faulty* machine's scan chain holds; its retained
/// part becomes the faulty machine's next stimulus `T_f`, which generally
/// differs from the intended `T_correct` — the mechanism by which hidden
/// faults surface in later cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiddenFault {
    /// The fault.
    pub fault: Fault,
    /// The faulty machine's current chain contents.
    pub image: BitVec,
}

/// Bookkeeping for every fault's state across stitched test application.
///
/// Enforces the state machine of the paper's §5: faults move freely between
/// `f_u` and `f_h`, while `f_c` is absorbing (`f_c` "will consistently
/// increase in size").
///
/// # Examples
///
/// ```
/// use tvs_fault::{Fault, FaultSite, StuckAt};
/// use tvs_logic::BitVec;
/// use tvs_netlist::GateId;
/// use tvs_stitch::{FaultSets, FaultState};
///
/// let f = Fault::stem(GateId::from_index(0), StuckAt::Zero);
/// let mut sets = FaultSets::new(vec![f]);
/// assert_eq!(sets.state(0), FaultState::Uncaught);
/// sets.set_hidden(0, BitVec::from_bools([true]));
/// sets.set_caught(0);
/// assert_eq!(sets.caught_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSets {
    faults: Vec<Fault>,
    state: Vec<FaultState>,
    images: Vec<Option<BitVec>>,
    caught: usize,
    hidden: usize,
    /// Lifetime transition counters: (uncaught→hidden, hidden→caught,
    /// hidden→uncaught erasures).
    transitions: (usize, usize, usize),
}

impl FaultSets {
    /// Creates the bookkeeping with every fault in `f_u`.
    pub fn new(faults: Vec<Fault>) -> Self {
        let n = faults.len();
        FaultSets {
            faults,
            state: vec![FaultState::Uncaught; n],
            images: vec![None; n],
            caught: 0,
            hidden: 0,
            transitions: (0, 0, 0),
        }
    }

    /// Lifetime transition counters `(uncaught→hidden, hidden→caught,
    /// hidden→uncaught)`; the second/first ratio is the hidden-fault
    /// conversion rate the paper's observability analysis (§6.2) is about.
    pub fn transition_counts(&self) -> (usize, usize, usize) {
        self.transitions
    }

    /// Total number of faults tracked.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if no faults are tracked.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fault(&self, index: usize) -> Fault {
        self.faults[index]
    }

    /// The state of the fault with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn state(&self, index: usize) -> FaultState {
        self.state[index]
    }

    /// The chain image of a hidden fault, `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn image(&self, index: usize) -> Option<&BitVec> {
        self.images[index].as_ref()
    }

    /// Size of `f_c`.
    pub fn caught_count(&self) -> usize {
        self.caught
    }

    /// Size of `f_h`.
    pub fn hidden_count(&self) -> usize {
        self.hidden
    }

    /// Size of `f_u`.
    pub fn uncaught_count(&self) -> usize {
        self.len() - self.caught - self.hidden
    }

    /// Indices currently in `f_u`, in list order.
    pub fn uncaught_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.state[i] == FaultState::Uncaught)
            .collect()
    }

    /// Indices currently in `f_h`, in list order.
    pub fn hidden_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.state[i] == FaultState::Hidden)
            .collect()
    }

    /// The hidden faults with their images. A hidden fault always carries an
    /// image (`set_hidden` is the only way in); a missing one would be an
    /// internal inconsistency, so such entries are skipped defensively rather
    /// than aborting the run.
    pub fn hidden_faults(&self) -> Vec<HiddenFault> {
        self.hidden_indices()
            .into_iter()
            .filter_map(|i| {
                self.images[i].clone().map(|image| HiddenFault {
                    fault: self.faults[i],
                    image,
                })
            })
            .collect()
    }

    /// Rebuilds the bookkeeping from checkpointed per-fault state, or `None`
    /// when the inputs are inconsistent (length mismatch, a hidden fault
    /// without an image, or an image on a non-hidden fault).
    pub fn restore(
        faults: Vec<Fault>,
        state: Vec<FaultState>,
        images: Vec<Option<BitVec>>,
        transitions: (usize, usize, usize),
    ) -> Option<Self> {
        if state.len() != faults.len() || images.len() != faults.len() {
            return None;
        }
        let mut caught = 0;
        let mut hidden = 0;
        for (st, image) in state.iter().zip(&images) {
            match st {
                FaultState::Caught => {
                    if image.is_some() {
                        return None;
                    }
                    caught += 1;
                }
                FaultState::Hidden => {
                    if image.is_none() {
                        return None;
                    }
                    hidden += 1;
                }
                FaultState::Uncaught => {
                    if image.is_some() {
                        return None;
                    }
                }
            }
        }
        Some(FaultSets {
            faults,
            state,
            images,
            caught,
            hidden,
            transitions,
        })
    }

    /// Moves a fault to `f_c`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range. Idempotent on already-caught
    /// faults.
    pub fn set_caught(&mut self, index: usize) {
        match self.state[index] {
            FaultState::Caught => {}
            FaultState::Hidden => {
                self.hidden -= 1;
                self.images[index] = None;
                self.state[index] = FaultState::Caught;
                self.caught += 1;
                self.transitions.1 += 1;
            }
            FaultState::Uncaught => {
                self.state[index] = FaultState::Caught;
                self.caught += 1;
            }
        }
    }

    /// Moves a fault to `f_h` with the given chain image (also used to
    /// refresh the image of an already-hidden fault).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the fault is already caught
    /// (`f_c` is absorbing).
    pub fn set_hidden(&mut self, index: usize, image: BitVec) {
        match self.state[index] {
            // Contract violation by the caller, not a runtime input error;
            // the documented "# Panics" state machine. lint:allow(SRC005)
            FaultState::Caught => panic!("caught faults cannot become hidden"),
            FaultState::Hidden => {
                self.images[index] = Some(image);
            }
            FaultState::Uncaught => {
                self.state[index] = FaultState::Hidden;
                self.images[index] = Some(image);
                self.hidden += 1;
                self.transitions.0 += 1;
            }
        }
    }

    /// Moves a fault back to `f_u` (a hidden fault whose effect was erased).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the fault is already caught.
    pub fn set_uncaught(&mut self, index: usize) {
        match self.state[index] {
            // Contract violation by the caller, not a runtime input error;
            // the documented "# Panics" state machine. lint:allow(SRC005)
            FaultState::Caught => panic!("caught faults cannot become uncaught"),
            FaultState::Hidden => {
                self.hidden -= 1;
                self.images[index] = None;
                self.state[index] = FaultState::Uncaught;
                self.transitions.2 += 1;
            }
            FaultState::Uncaught => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::StuckAt;
    use tvs_netlist::GateId;

    fn three() -> FaultSets {
        let faults = (0..3)
            .map(|i| Fault::stem(GateId::from_index(i), StuckAt::Zero))
            .collect();
        FaultSets::new(faults)
    }

    #[test]
    fn starts_all_uncaught() {
        let s = three();
        assert_eq!(s.uncaught_count(), 3);
        assert_eq!(s.caught_count(), 0);
        assert_eq!(s.hidden_count(), 0);
        assert_eq!(s.uncaught_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn counts_track_transitions() {
        let mut s = three();
        s.set_hidden(1, BitVec::from_bools([true]));
        assert_eq!(
            (s.uncaught_count(), s.hidden_count(), s.caught_count()),
            (2, 1, 0)
        );
        s.set_caught(1);
        assert_eq!(
            (s.uncaught_count(), s.hidden_count(), s.caught_count()),
            (2, 0, 1)
        );
        s.set_caught(0);
        assert_eq!(
            (s.uncaught_count(), s.hidden_count(), s.caught_count()),
            (1, 0, 2)
        );
        assert_eq!(s.uncaught_indices(), vec![2]);
    }

    #[test]
    fn hidden_image_is_accessible_and_cleared() {
        let mut s = three();
        let img = BitVec::from_bools([true, false]);
        s.set_hidden(0, img.clone());
        assert_eq!(s.image(0), Some(&img));
        assert_eq!(s.hidden_faults().len(), 1);
        s.set_uncaught(0);
        assert_eq!(s.image(0), None);
        assert_eq!(s.uncaught_count(), 3);
    }

    #[test]
    fn hidden_image_can_be_refreshed() {
        let mut s = three();
        s.set_hidden(0, BitVec::from_bools([true]));
        s.set_hidden(0, BitVec::from_bools([false]));
        assert_eq!(s.hidden_count(), 1);
        assert_eq!(s.image(0), Some(&BitVec::from_bools([false])));
    }

    #[test]
    #[should_panic(expected = "caught faults cannot become hidden")]
    fn caught_is_absorbing_vs_hidden() {
        let mut s = three();
        s.set_caught(0);
        s.set_hidden(0, BitVec::new());
    }

    #[test]
    #[should_panic(expected = "caught faults cannot become uncaught")]
    fn caught_is_absorbing_vs_uncaught() {
        let mut s = three();
        s.set_caught(0);
        s.set_uncaught(0);
    }

    #[test]
    fn restore_round_trips_and_rejects_inconsistency() {
        let mut s = three();
        s.set_hidden(0, BitVec::from_bools([true]));
        s.set_caught(1);
        let rebuilt = FaultSets::restore(
            (0..3)
                .map(|i| Fault::stem(GateId::from_index(i), StuckAt::Zero))
                .collect(),
            vec![FaultState::Hidden, FaultState::Caught, FaultState::Uncaught],
            vec![Some(BitVec::from_bools([true])), None, None],
            s.transition_counts(),
        )
        .expect("consistent state restores");
        assert_eq!(rebuilt.hidden_count(), s.hidden_count());
        assert_eq!(rebuilt.caught_count(), s.caught_count());
        assert_eq!(rebuilt.image(0), s.image(0));
        assert_eq!(rebuilt.transition_counts(), s.transition_counts());
        // Hidden without an image is inconsistent.
        assert!(FaultSets::restore(
            vec![Fault::stem(GateId::from_index(0), StuckAt::Zero)],
            vec![FaultState::Hidden],
            vec![None],
            (0, 0, 0),
        )
        .is_none());
        // Length mismatch is inconsistent.
        assert!(FaultSets::restore(
            vec![Fault::stem(GateId::from_index(0), StuckAt::Zero)],
            vec![],
            vec![],
            (0, 0, 0),
        )
        .is_none());
    }

    #[test]
    fn set_caught_is_idempotent() {
        let mut s = three();
        s.set_caught(2);
        s.set_caught(2);
        assert_eq!(s.caught_count(), 1);
    }
}
