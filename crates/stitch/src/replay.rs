//! Replay of a fixed vector schedule — reproduces the paper's Table 1.

use tvs_logic::BitVec;

use tvs_fault::{FaultSim, SlotSpec};

use crate::engine::StitchEngine;
use crate::run::StitchError;
use crate::StitchConfig;

/// One cycle of a [`replay`](StitchEngine::replay): the fault-free vector
/// and response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCycle {
    /// The intended (fault-free) stimulus, PIs then chain cells.
    pub vector: BitVec,
    /// The fault-free outputs, POs then captured chain cells.
    pub response: BitVec,
}

/// One fault's row in a [`ReplayTrace`] — the paper's Table 1 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRow {
    /// The fault.
    pub fault: tvs_fault::Fault,
    /// Per cycle (until caught): the stimulus this faulty machine actually
    /// received and the response it produced.
    pub entries: Vec<ReplayCycle>,
    /// The 0-based cycle at which the fault's effect reached the tester,
    /// `None` if it never did (redundant or unlucky).
    pub caught_at: Option<usize>,
}

/// The outcome of replaying a fixed vector schedule (reproduces Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayTrace {
    /// Fault-free behaviour per cycle.
    pub cycles: Vec<ReplayCycle>,
    /// One row per tracked fault.
    pub rows: Vec<ReplayRow>,
}

impl StitchEngine<'_> {
    /// Replays a fixed schedule of vectors (reproducing the paper's
    /// Table 1): every collapsed fault is tracked through each cycle until
    /// its effect reaches the tester.
    ///
    /// `vectors[i]` is the full intended stimulus (PIs then chain cells) of
    /// cycle `i`; `shifts[i]` the bits shifted before applying it
    /// (`shifts[0]` must equal the scan length); `final_flush` the closing
    /// observation shift.
    ///
    /// # Errors
    ///
    /// [`StitchError::ReplayMismatch`] if a vector's retained chain bits do
    /// not equal the shifted previous response — such a schedule is
    /// physically impossible to apply.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` and `shifts` have different lengths or a vector
    /// has the wrong width.
    pub fn replay(
        &self,
        vectors: &[BitVec],
        shifts: &[usize],
        final_flush: usize,
        config: &StitchConfig,
    ) -> Result<ReplayTrace, StitchError> {
        assert_eq!(vectors.len(), shifts.len(), "one shift size per vector");
        assert!(!vectors.is_empty(), "at least one vector");
        assert_eq!(
            shifts[0],
            self.chain.length(),
            "first vector is a full shift"
        );
        let p = self.view.pi_count();
        let l = self.chain.length();
        let q = self.view.po_count();
        for v in vectors {
            assert_eq!(v.len(), p + l, "vector width must be PIs + scan cells");
        }

        let mut fsim = FaultSim::new(self.netlist, &self.view);
        let n_faults = self.faults.len();

        // Good machine first: validate the schedule and precompute images.
        let mut good_cycles: Vec<ReplayCycle> = Vec::new();
        let mut good_images: Vec<BitVec> = Vec::new();
        let mut image = BitVec::zeros(l);
        for (i, vector) in vectors.iter().enumerate() {
            let chain_tv = vector.slice(p..p + l);
            if i > 0 {
                // Pinned consistency: retained cells must match the shifted
                // previous image.
                let k = shifts[i];
                let shifted = self
                    .chain
                    .shift(&image, &chain_tv.rev_slice(0..k), config.observe);
                if shifted.new_image.slice(k..l) != chain_tv.slice(k..l) {
                    return Err(StitchError::ReplayMismatch { cycle: i });
                }
            }
            let out = fsim.good_outputs(vector);
            let resp = out.slice(q..q + l);
            image = config.capture.capture(&chain_tv, &resp);
            good_cycles.push(ReplayCycle {
                vector: vector.clone(),
                response: out,
            });
            good_images.push(image.clone());
        }

        // Per-fault tracking with one chain image each.
        let mut rows: Vec<ReplayRow> = self
            .faults
            .iter()
            .map(|&fault| ReplayRow {
                fault,
                entries: Vec::new(),
                caught_at: None,
            })
            .collect();
        let mut images: Vec<BitVec> = vec![BitVec::zeros(l); n_faults];

        for (i, vector) in vectors.iter().enumerate() {
            let k = shifts[i];
            let alive: Vec<usize> = (0..n_faults)
                .filter(|&f| rows[f].caught_at.is_none())
                .collect();
            if alive.is_empty() {
                break;
            }
            // Derive each alive fault's stimulus by shifting its own image.
            let mut stimuli: Vec<BitVec> = Vec::with_capacity(alive.len());
            let mut shift_caught: Vec<bool> = Vec::with_capacity(alive.len());
            let good_chain_tv = vector.slice(p..p + l);
            let incoming = good_chain_tv.rev_slice(0..k);
            for &f in &alive {
                if i == 0 {
                    stimuli.push(vector.clone());
                    shift_caught.push(false);
                } else {
                    let good_prev = &good_images[i - 1];
                    let sh_good = self.chain.shift(good_prev, &incoming, config.observe);
                    let sh_f = self.chain.shift(&images[f], &incoming, config.observe);
                    shift_caught.push(sh_f.observed != sh_good.observed);
                    let mut stim = vector.slice(0..p);
                    stim.extend(sh_f.new_image.iter());
                    stimuli.push(stim);
                }
            }
            // Simulate all alive faulty machines under their own stimuli.
            // The per-cycle good machine above seeded the session baseline,
            // so these sweeps are incremental.
            let mut outs: Vec<BitVec> = Vec::with_capacity(alive.len());
            for batch_start in (0..alive.len()).step_by(64) {
                let end = (batch_start + 64).min(alive.len());
                let slots: Vec<SlotSpec<'_>> = (batch_start..end)
                    .map(|j| SlotSpec {
                        stimulus: &stimuli[j],
                        fault: Some(self.faults.faults()[alive[j]]),
                    })
                    .collect();
                match fsim.run_slots(&slots) {
                    Ok(batch) => outs.extend(batch),
                    Err(_) => unreachable!("64 view-width slots per sweep"),
                }
            }
            let good_out = &good_cycles[i].response;
            for (j, &f) in alive.iter().enumerate() {
                let out = &outs[j];
                let chain_stim = stimuli[j].slice(p..p + l);
                let resp = out.slice(q..q + l);
                images[f] = config.capture.capture(&chain_stim, &resp);
                rows[f].entries.push(ReplayCycle {
                    vector: stimuli[j].clone(),
                    response: out.clone(),
                });
                // Caught this cycle if the shift revealed an older effect,
                // the POs differ now, or the captured image difference will
                // be shifted out next cycle (exact lookahead, including the
                // closing flush).
                let po_differs = out.slice(0..q) != good_out.slice(0..q);
                let next_k = if i + 1 < shifts.len() {
                    shifts[i + 1]
                } else {
                    final_flush
                };
                let next_incoming = if i + 1 < vectors.len() {
                    vectors[i + 1].slice(p..p + l).rev_slice(0..next_k)
                } else {
                    BitVec::zeros(next_k)
                };
                let sh_good_next =
                    self.chain
                        .shift(&good_images[i], &next_incoming, config.observe);
                let sh_f_next = self.chain.shift(&images[f], &next_incoming, config.observe);
                let observed_next = sh_f_next.observed != sh_good_next.observed;
                if shift_caught[j] || po_differs || observed_next {
                    rows[f].caught_at = Some(i);
                }
            }
        }

        Ok(ReplayTrace {
            cycles: good_cycles,
            rows,
        })
    }
}
