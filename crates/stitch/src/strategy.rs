//! The pluggable strategy layer over the cycle pipeline.
//!
//! A [`Strategy`] owns every knob the paper varies between its columns —
//! deterministic fault ordering, whether candidates are greedily scored,
//! and the shift-size schedule — plus a stable fingerprint that feeds
//! [`StitchConfig::fingerprint`](crate::StitchConfig::fingerprint) (and
//! through it the snapshot header and the serving layer's `ArtifactKey`).
//!
//! The four legacy behaviors ([`SelectionStrategy`]) are reimplemented as
//! trait impls, bit-identical to the closed-enum engine they replace: they
//! touch neither the run PRNG (beyond the draws the old code made) nor the
//! budget during [`Strategy::prepare`], so their result streams are
//! unchanged. Three new strategies ride on the same surface:
//!
//! * [`StrategyId::Adi`] — accidental-detection-index ordering (Pomeranz/
//!   Reddy, arXiv:0710.4637): a seeded random fault-sim pass counts how
//!   often each fault is detected *by accident*; constrained ATPG then
//!   targets the rarely-hit faults first, since the frequently-hit ones
//!   fall out fortuitously anyway.
//! * [`StrategyId::SchemeSearch`] — evolutionary scheme search (Polian et
//!   al., arXiv:0710.4670): a seeded, budget-charged evolutionary loop
//!   tunes the `Variable` shift-schedule rationals per circuit and emits
//!   the winning genome deterministically as the strategy cursor.
//! * [`StrategyId::Buckets`] — hardness-bucketed escalation: SCOAP
//!   hardness terciles order the targets, and the shift size escalates
//!   per-bucket (easy faults at small shifts, hard faults allowed the full
//!   cap) instead of globally. Growth stays monotone, which keeps eager
//!   caught-classification sound (see [`ShiftPolicy`]).
//!
//! Strategy state that must survive a checkpoint (ADI counts, the winning
//! genome, the active bucket) lives in an opaque `Vec<u64>` cursor carried
//! by the snapshot; impls validate the cursor at every use so a forged
//! snapshot degrades to defaults instead of panicking.

use tvs_exec::Budget;
use tvs_logic::{BitVec, Prng};
use tvs_netlist::{Netlist, ScanView};

use tvs_fault::{Fault, FaultSim, Scoap, SlotSpec};

use crate::policy::Ratio;
use crate::{FaultSets, SelectionStrategy, ShiftPolicy};

/// The borrowed slice of run state a strategy decision sees.
///
/// Everything here is a disjoint borrow of `RunState` fields: immutable
/// views of the circuit and fault state, plus the three mutable streams a
/// strategy may legitimately drive — the run PRNG (legacy `Random`
/// ordering), the work budget (every prepare-phase simulation is charged),
/// and the strategy's own cursor.
pub struct StrategyCtx<'c> {
    /// The circuit under test.
    pub netlist: &'c Netlist,
    /// Its scan view (PI/PO/chain widths).
    pub view: &'c ScanView,
    /// SCOAP testability, precomputed once per run.
    pub scoap: &'c Scoap,
    /// The tracked fault sets (`f_u`/`f_h`/`f_c`).
    pub sets: &'c FaultSets,
    /// The configured shift policy (strategies may delegate or derive).
    pub policy: &'c ShiftPolicy,
    /// The run seed (strategies derive their own decoupled streams).
    pub seed: u64,
    /// Scan chain length `L`.
    pub scan_len: usize,
    /// Current shift size `k`.
    pub k: usize,
    /// The run PRNG. Only the legacy `Random` ordering draws from it —
    /// new strategies use seed-derived private streams so their prepare
    /// phase cannot perturb the shared stream.
    pub rng: &'c mut Prng,
    /// The run's work budget; prepare-phase simulation charges here.
    pub budget: &'c mut Budget,
    /// The strategy's persistent cursor (checkpointed verbatim).
    pub cursor: &'c mut Vec<u64>,
}

impl StrategyCtx<'_> {
    fn hardness(&self, target: usize) -> u64 {
        self.scoap
            .fault_hardness(self.netlist, &self.sets.fault(target))
    }
}

/// One pluggable strategy over the cycle pipeline.
///
/// Implementations must be deterministic: any randomness comes from the
/// context's run PRNG or a stream derived from the config seed, and any
/// meaningful work is charged to the context's budget. State that must
/// survive checkpoint/resume goes in the cursor returned by
/// [`prepare`](Strategy::prepare).
pub trait Strategy: Send + Sync {
    /// The strategy's CLI/wire name.
    fn name(&self) -> &'static str;

    /// A float-free, stable text rendering for the config fingerprint.
    /// Changing a strategy's semantics must change this text, so stale
    /// snapshots and cache artifacts are invalidated.
    fn fingerprint_text(&self) -> String;

    /// Whether the selection stage scores multiple candidates per cycle
    /// (greedy) or takes the first constrained-ATPG success.
    fn is_greedy(&self) -> bool {
        false
    }

    /// Whether greedy scoring weights each caught fault by its SCOAP
    /// hardness (the paper's `Weighted` column).
    fn weighted_scoring(&self) -> bool {
        false
    }

    /// One-time cold-start work after the prescreen; returns the cursor.
    /// Not called on resume — the snapshot restores the cursor instead.
    fn prepare(&self, _ctx: &mut StrategyCtx<'_>) -> Vec<u64> {
        Vec::new()
    }

    /// The shift size for the first stitched cycle.
    fn initial_shift(&self, ctx: &mut StrategyCtx<'_>) -> usize {
        ctx.policy.initial(ctx.scan_len)
    }

    /// The next (strictly larger) shift size once the current one is
    /// exhausted, or `None` to hand the leftovers to the fallback phase.
    /// Must be monotone — a shrinking shift would unsound the engine's
    /// eager caught-classification.
    fn escalate(&self, ctx: &mut StrategyCtx<'_>) -> Option<usize> {
        ctx.policy.escalate(ctx.scan_len, ctx.k)
    }

    /// Orders the current constrained-ATPG target list in place. `targets`
    /// arrives in ascending tracked-index order with never-target faults
    /// already removed; all sorting must be stable so ties break by index
    /// at any thread count.
    fn order_targets(&self, ctx: &mut StrategyCtx<'_>, targets: &mut Vec<usize>);
}

/// Identifier of a [`Strategy`], carried by
/// [`StitchConfig`](crate::StitchConfig).
///
/// The four legacy behaviors keep their [`SelectionStrategy`] names; the
/// three strategy-layer additions get their own variants. The identifier
/// (not the trait object) is what configs store, wires serialize and
/// fingerprints hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StrategyId {
    /// A legacy selection strategy (paper §6.3) with the configured shift
    /// policy. The default is the paper's winning `MostFaults`.
    #[default]
    MostFaults,
    /// Legacy random ordering.
    Random,
    /// Legacy hardest-first ordering.
    Hardness,
    /// Legacy greedy scoring with hardness weights.
    Weighted,
    /// Accidental-detection-index ordering (Pomeranz/Reddy).
    Adi,
    /// Evolutionary shift-schedule search (Polian et al.).
    SchemeSearch,
    /// SCOAP-bucketed per-bucket escalation.
    Buckets,
}

/// Every strategy, in the canonical sweep order (legacy first).
pub const ALL_STRATEGIES: [StrategyId; 7] = [
    StrategyId::Random,
    StrategyId::Hardness,
    StrategyId::MostFaults,
    StrategyId::Weighted,
    StrategyId::Adi,
    StrategyId::SchemeSearch,
    StrategyId::Buckets,
];

impl StrategyId {
    /// Parses a CLI/wire strategy name.
    pub fn parse(name: &str) -> Option<StrategyId> {
        match name {
            "random" => Some(StrategyId::Random),
            "hardness" => Some(StrategyId::Hardness),
            "most" => Some(StrategyId::MostFaults),
            "weighted" => Some(StrategyId::Weighted),
            "adi" => Some(StrategyId::Adi),
            "scheme-search" => Some(StrategyId::SchemeSearch),
            "buckets" => Some(StrategyId::Buckets),
            _ => None,
        }
    }

    /// The CLI/wire name.
    pub fn name(&self) -> &'static str {
        self.resolve().name()
    }

    /// The legacy selection behavior this maps onto, if any.
    pub fn as_selection(&self) -> Option<SelectionStrategy> {
        match self {
            StrategyId::Random => Some(SelectionStrategy::Random),
            StrategyId::Hardness => Some(SelectionStrategy::Hardness),
            StrategyId::MostFaults => Some(SelectionStrategy::MostFaults),
            StrategyId::Weighted => Some(SelectionStrategy::Weighted),
            _ => None,
        }
    }

    /// The legacy strategy id for a [`SelectionStrategy`].
    pub fn from_selection(selection: SelectionStrategy) -> StrategyId {
        match selection {
            SelectionStrategy::Random => StrategyId::Random,
            SelectionStrategy::Hardness => StrategyId::Hardness,
            SelectionStrategy::MostFaults => StrategyId::MostFaults,
            SelectionStrategy::Weighted => StrategyId::Weighted,
        }
    }

    /// The strategy implementation behind this identifier.
    pub fn resolve(&self) -> &'static dyn Strategy {
        match self {
            StrategyId::Random => &SelectOrdering {
                selection: SelectionStrategy::Random,
            },
            StrategyId::Hardness => &SelectOrdering {
                selection: SelectionStrategy::Hardness,
            },
            StrategyId::MostFaults => &SelectOrdering {
                selection: SelectionStrategy::MostFaults,
            },
            StrategyId::Weighted => &SelectOrdering {
                selection: SelectionStrategy::Weighted,
            },
            StrategyId::Adi => &AdiOrdering,
            StrategyId::SchemeSearch => &SchemeSearch,
            StrategyId::Buckets => &HardnessBuckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy behaviors through the trait (bit-identical to the closed enums).
// ---------------------------------------------------------------------------

/// The four paper-§6.3 behaviors, parameterized by their ordering.
struct SelectOrdering {
    selection: SelectionStrategy,
}

impl Strategy for SelectOrdering {
    fn name(&self) -> &'static str {
        match self.selection {
            SelectionStrategy::Random => "random",
            SelectionStrategy::Hardness => "hardness",
            SelectionStrategy::MostFaults => "most",
            SelectionStrategy::Weighted => "weighted",
        }
    }

    fn fingerprint_text(&self) -> String {
        format!("select:{}", self.name())
    }

    fn is_greedy(&self) -> bool {
        self.selection.is_greedy()
    }

    fn weighted_scoring(&self) -> bool {
        self.selection == SelectionStrategy::Weighted
    }

    fn order_targets(&self, ctx: &mut StrategyCtx<'_>, targets: &mut Vec<usize>) {
        match self.selection {
            SelectionStrategy::Random => ctx.rng.shuffle(targets),
            // Hardness/Weighted: hard faults get first claim on the still-
            // loose constraint (the paper's §6.3 rationale).
            SelectionStrategy::Hardness | SelectionStrategy::Weighted => {
                targets.sort_by_key(|&i| std::cmp::Reverse(ctx.hardness(i)));
            }
            // MostFaults: candidates come from easy targets first — they
            // are the ones likely to admit tests under a tight constraint
            // (the paper's §6.1: "easy-to-test faults dominate" the early,
            // small-shift stage), and the greedy scoring then picks the
            // best of the pool.
            SelectionStrategy::MostFaults => {
                targets.sort_by_key(|&i| ctx.hardness(i));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ADI ordering (Pomeranz/Reddy, arXiv:0710.4637).
// ---------------------------------------------------------------------------

/// Random patterns simulated during the ADI prepare pass.
const ADI_PATTERNS: usize = 16;
/// Seed salt decoupling the ADI pattern stream from the run PRNG.
const ADI_SALT: u64 = 0x41444926_u64; // "ADI&"

struct AdiOrdering;

impl AdiOrdering {
    /// Per-fault accidental-detection counts over a seeded random-pattern
    /// fault-sim pass (full observation: any output difference counts).
    fn detection_counts(ctx: &mut StrategyCtx<'_>) -> Vec<u64> {
        let faults: Vec<Fault> = (0..ctx.sets.len()).map(|i| ctx.sets.fault(i)).collect();
        let mut counts = vec![0u64; faults.len()];
        let mut rng = Prng::seed_from_u64(ctx.seed ^ ADI_SALT);
        let mut fsim = FaultSim::new(ctx.netlist, ctx.view);
        for _ in 0..ADI_PATTERNS {
            let pattern: BitVec = (0..ctx.view.input_count())
                .map(|_| rng.next_bool())
                .collect();
            ctx.budget.charge(faults.len() as u64);
            let good = fsim.good_outputs(&pattern);
            for (chunk_i, chunk) in faults.chunks(63).enumerate() {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .map(|&f| SlotSpec {
                        stimulus: &pattern,
                        fault: Some(f),
                    })
                    .collect();
                let outs = match fsim.run_slots(&slots) {
                    Ok(outs) => outs,
                    Err(_) => unreachable!("63 view-width slots per sweep"),
                };
                for (j, out) in outs.iter().enumerate() {
                    if out != &good {
                        counts[chunk_i * 63 + j] += 1;
                    }
                }
            }
        }
        counts
    }
}

impl Strategy for AdiOrdering {
    fn name(&self) -> &'static str {
        "adi"
    }

    fn fingerprint_text(&self) -> String {
        format!("adi:p{ADI_PATTERNS}")
    }

    fn prepare(&self, ctx: &mut StrategyCtx<'_>) -> Vec<u64> {
        Self::detection_counts(ctx)
    }

    fn order_targets(&self, ctx: &mut StrategyCtx<'_>, targets: &mut Vec<usize>) {
        // Rarely-accidentally-detected faults first: they need explicit
        // targeting, while high-ADI faults fall out as side effects of
        // whatever vectors get applied. A forged/short cursor degrades to
        // count 0 (highest priority), never out-of-bounds.
        targets.sort_by_key(|&i| ctx.cursor.get(i).copied().unwrap_or(0));
    }
}

// ---------------------------------------------------------------------------
// Evolutionary scheme search (Polian et al., arXiv:0710.4670).
// ---------------------------------------------------------------------------

/// Population per generation.
const SCHEME_POP: usize = 8;
/// Generations after the initial population.
const SCHEME_GENS: usize = 4;
/// Fault-sample cap per fitness evaluation.
const SCHEME_SAMPLE: usize = 128;
/// Random probe vectors shared by every fitness evaluation.
const SCHEME_VECTORS: usize = 4;
/// Seed salt decoupling the search stream from the run PRNG.
const SCHEME_SALT: u64 = 0x5343484D_u64; // "SCHM"

struct SchemeSearch;

/// A shift-schedule genome: `[start_num, start_den, growth_num,
/// growth_den, max_num, max_den]` — exactly the cursor layout.
type Genome = [u64; 6];

fn genome_policy(genome: &[u64]) -> Option<ShiftPolicy> {
    if genome.len() != 6 || genome[1] == 0 || genome[3] == 0 || genome[5] == 0 {
        return None;
    }
    let start = Ratio {
        num: genome[0],
        den: genome[1],
    };
    let growth = Ratio {
        num: genome[2],
        den: genome[3],
    };
    let max = Ratio {
        num: genome[4],
        den: genome[5],
    };
    if !start.is_proper() || !growth.exceeds_one() || !max.is_proper() || !max.ge(&start) {
        return None;
    }
    Some(ShiftPolicy::Variable { start, growth, max })
}

/// Fitness memo keyed by `(k0, cap)` — the only genome features the
/// probe-based fitness can see.
type Memo = Vec<((usize, usize), u128)>;

impl SchemeSearch {
    /// The schedule the cursor genome encodes, falling back to the
    /// configured policy when the cursor is absent or forged.
    fn schedule(ctx: &StrategyCtx<'_>) -> ShiftPolicy {
        genome_policy(ctx.cursor).unwrap_or(*ctx.policy)
    }

    /// Memoized fitness of one genome (invalid genomes score zero).
    fn evaluate(
        g: &Genome,
        ctx: &mut StrategyCtx<'_>,
        probes: &[BitVec],
        sample: &[Fault],
        goods: &[BitVec],
        memo: &mut Memo,
        allowance: u64,
    ) -> u128 {
        let policy = match genome_policy(g) {
            Some(p) => p,
            None => return 0,
        };
        let key = (policy.initial(ctx.scan_len), policy.cap(ctx.scan_len));
        if let Some(&(_, f)) = memo.iter().find(|&&(k, _)| k == key) {
            return f;
        }
        // Search spend is capped: once the allowance is gone, unevaluated
        // schedules score zero instead of starving the run being tuned.
        if ctx.budget.spent() >= allowance {
            return 0;
        }
        let f = Self::fitness(&policy, ctx, probes, sample, goods);
        memo.push((key, f));
        f
    }

    /// A random valid genome mutation of `parent` (deterministic in `rng`).
    fn mutate(parent: &Genome, rng: &mut Prng) -> Genome {
        let mut g = *parent;
        for _ in 0..8 {
            match rng.gen_range(0..3) {
                // start = 1/d, d ∈ 2..=16.
                0 => {
                    g[0] = 1;
                    g[1] = rng.gen_range(2..17) as u64;
                }
                // growth ∈ {3/2, 2/1, 5/2, 3/1}.
                1 => {
                    let (n, d) = [(3, 2), (2, 1), (5, 2), (3, 1)][rng.gen_range(0..4)];
                    g[2] = n;
                    g[3] = d;
                }
                // max ∈ {1/4, 1/3, 1/2, 2/3}.
                _ => {
                    let (n, d) = [(1, 4), (1, 3), (1, 2), (2, 3)][rng.gen_range(0..4)];
                    g[4] = n;
                    g[5] = d;
                }
            }
            if genome_policy(&g).is_some() {
                return g;
            }
            // Rare invalid combination (e.g. max < start): retry a bounded
            // number of times, then keep the parent.
            g = *parent;
        }
        *parent
    }

    /// Fitness of one schedule: estimated catches-per-memory-bit at both
    /// ends of the schedule (the opening shift size and the escalation
    /// cap), integer-scaled. A fault counts as caught at shift `k` when a
    /// probe vector differentiates it at a PO or inside the `k`-bit
    /// response window the next shift would expose.
    fn fitness(
        policy: &ShiftPolicy,
        ctx: &mut StrategyCtx<'_>,
        probes: &[BitVec],
        sample: &[Fault],
        goods: &[BitVec],
    ) -> u128 {
        let l = ctx.scan_len;
        let k0 = policy.initial(l);
        let cap = policy.cap(l);
        Self::window_score(k0, ctx, probes, sample, goods) * 2
            + Self::window_score(cap, ctx, probes, sample, goods)
    }

    fn window_score(
        k: usize,
        ctx: &mut StrategyCtx<'_>,
        probes: &[BitVec],
        sample: &[Fault],
        goods: &[BitVec],
    ) -> u128 {
        let (q, l) = (ctx.view.po_count(), ctx.scan_len);
        let p = ctx.view.pi_count();
        let watched: Vec<usize> = (0..q).chain(q + l.saturating_sub(k)..q + l).collect();
        let mut fsim = FaultSim::new(ctx.netlist, ctx.view);
        let mut caught = 0u128;
        for (probe, good) in probes.iter().zip(goods) {
            ctx.budget.charge(sample.len() as u64);
            for chunk in sample.chunks(63) {
                let slots: Vec<SlotSpec<'_>> = chunk
                    .iter()
                    .map(|&f| SlotSpec {
                        stimulus: probe,
                        fault: Some(f),
                    })
                    .collect();
                let outs = match fsim.run_slots(&slots) {
                    Ok(outs) => outs,
                    Err(_) => unreachable!("63 view-width slots per sweep"),
                };
                for out in &outs {
                    if watched.iter().any(|&o| out.get(o) != good.get(o)) {
                        caught += 1;
                    }
                }
            }
        }
        // Catches per stitched-cycle memory cost (2k + p + q bits), scaled
        // to keep everything in integers.
        caught * 1_000_000 / (2 * k + p + q).max(1) as u128
    }
}

impl Strategy for SchemeSearch {
    fn name(&self) -> &'static str {
        "scheme-search"
    }

    fn fingerprint_text(&self) -> String {
        format!("scheme:pop{SCHEME_POP}:gen{SCHEME_GENS}")
    }

    fn is_greedy(&self) -> bool {
        true
    }

    fn prepare(&self, ctx: &mut StrategyCtx<'_>) -> Vec<u64> {
        let mut rng = Prng::seed_from_u64(ctx.seed ^ SCHEME_SALT);
        let sample: Vec<Fault> = (0..ctx.sets.len().min(SCHEME_SAMPLE))
            .map(|i| ctx.sets.fault(i))
            .collect();
        if sample.is_empty() || ctx.scan_len == 0 {
            return Vec::new();
        }
        // Probe vectors are drawn once and shared by every evaluation, so
        // fitness comparisons are apples-to-apples.
        let probes: Vec<BitVec> = (0..SCHEME_VECTORS)
            .map(|_| {
                (0..ctx.view.input_count())
                    .map(|_| rng.next_bool())
                    .collect()
            })
            .collect();
        let goods: Vec<BitVec> = {
            let mut fsim = FaultSim::new(ctx.netlist, ctx.view);
            probes.iter().map(|p| fsim.good_outputs(p)).collect()
        };

        // Initial population: the configured default schedule plus mutants.
        let seed_genome: Genome = match *ctx.policy {
            ShiftPolicy::Variable { start, growth, max } => [
                start.num, start.den, growth.num, growth.den, max.num, max.den,
            ],
            // A fixed policy has no rational genome; seed from the repo
            // default schedule instead.
            ShiftPolicy::Fixed(_) => [1, 8, 2, 1, 1, 2],
        };
        let seed_genome = if genome_policy(&seed_genome).is_some() {
            seed_genome
        } else {
            [1, 8, 2, 1, 1, 2]
        };
        let mut population: Vec<Genome> = vec![seed_genome];
        while population.len() < SCHEME_POP {
            let g = Self::mutate(&seed_genome, &mut rng);
            population.push(g);
        }

        // Fitness depends on the genome only through (k0, cap), so
        // evaluations memoize on that pair — a plain Vec, not a hash map,
        // to keep iteration order deterministic. The whole search may spend
        // at most a quarter of the remaining work budget; the spend
        // sequence is deterministic, so so is the cut-off point.
        let mut memo: Memo = Vec::new();
        let allowance = ctx
            .budget
            .spent()
            .saturating_add(ctx.budget.remaining() / 4);

        for _ in 0..SCHEME_GENS {
            let mut scored: Vec<(u128, Genome)> = Vec::with_capacity(population.len());
            for g in &population {
                let f = Self::evaluate(g, ctx, &probes, &sample, &goods, &mut memo, allowance);
                scored.push((f, *g));
            }
            // Fittest first; ties break on the genome itself so survivor
            // choice never depends on population order.
            scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            scored.dedup_by(|a, b| a.1 == b.1);
            scored.truncate(SCHEME_POP / 2);
            population = scored.iter().map(|&(_, g)| g).collect();
            let survivors = population.clone();
            let mut i = 0usize;
            while population.len() < SCHEME_POP {
                let parent = survivors[i % survivors.len()];
                population.push(Self::mutate(&parent, &mut rng));
                i += 1;
            }
        }
        let first = Self::evaluate(
            &population[0],
            ctx,
            &probes,
            &sample,
            &goods,
            &mut memo,
            allowance,
        );
        let mut best = (first, population[0]);
        for g in &population[1..] {
            let f = Self::evaluate(g, ctx, &probes, &sample, &goods, &mut memo, allowance);
            if f > best.0 || (f == best.0 && *g < best.1) {
                best = (f, *g);
            }
        }
        // A zero-fitness winner means the allowance ran dry before any
        // schedule proved itself — keep the configured policy instead.
        if best.0 == 0 {
            return seed_genome.to_vec();
        }
        best.1.to_vec()
    }

    fn initial_shift(&self, ctx: &mut StrategyCtx<'_>) -> usize {
        Self::schedule(ctx).initial(ctx.scan_len)
    }

    fn escalate(&self, ctx: &mut StrategyCtx<'_>) -> Option<usize> {
        Self::schedule(ctx).escalate(ctx.scan_len, ctx.k)
    }

    fn order_targets(&self, ctx: &mut StrategyCtx<'_>, targets: &mut Vec<usize>) {
        // The schedule is the search target; ordering and scoring follow
        // the paper's winning greedy scheme (easy-first + most-faults).
        targets.sort_by_key(|&i| ctx.hardness(i));
    }
}

// ---------------------------------------------------------------------------
// Hardness-bucketed escalation.
// ---------------------------------------------------------------------------

/// Number of SCOAP hardness buckets.
const BUCKETS: usize = 3;

struct HardnessBuckets;

impl HardnessBuckets {
    /// `(t1, t2)` — the tercile thresholds from the cursor (zeros when the
    /// cursor is absent or forged, which degrades every fault to the
    /// hardest bucket).
    fn thresholds(cursor: &[u64]) -> (u64, u64) {
        (
            cursor.first().copied().unwrap_or(0),
            cursor.get(1).copied().unwrap_or(0),
        )
    }

    fn active(cursor: &[u64]) -> usize {
        cursor
            .get(2)
            .copied()
            .unwrap_or(0)
            .min((BUCKETS - 1) as u64) as usize
    }

    fn bucket(h: u64, t1: u64, t2: u64) -> usize {
        if h <= t1 {
            0
        } else if h <= t2 {
            1
        } else {
            2
        }
    }

    /// The escalation ceiling of bucket `b` (bucket `BUCKETS-1` gets the
    /// policy's full cap).
    fn bucket_cap(policy: &ShiftPolicy, scan_len: usize, b: usize) -> usize {
        let cap = policy.cap(scan_len).clamp(1, scan_len);
        (cap * (b + 1) / BUCKETS).max(1)
    }
}

impl Strategy for HardnessBuckets {
    fn name(&self) -> &'static str {
        "buckets"
    }

    fn fingerprint_text(&self) -> String {
        format!("buckets:{BUCKETS}")
    }

    fn is_greedy(&self) -> bool {
        true
    }

    fn prepare(&self, ctx: &mut StrategyCtx<'_>) -> Vec<u64> {
        let mut hardness: Vec<u64> = (0..ctx.sets.len()).map(|i| ctx.hardness(i)).collect();
        hardness.sort_unstable();
        let (t1, t2) = if hardness.is_empty() {
            (0, 0)
        } else {
            (
                hardness[hardness.len() / BUCKETS],
                hardness[hardness.len() * 2 / BUCKETS],
            )
        };
        vec![t1, t2, 0]
    }

    fn initial_shift(&self, ctx: &mut StrategyCtx<'_>) -> usize {
        let base = ctx.policy.initial(ctx.scan_len);
        match *ctx.policy {
            // A fixed policy never escalates, so bucketing cannot cap it.
            ShiftPolicy::Fixed(_) => base,
            ShiftPolicy::Variable { .. } => {
                base.clamp(1, Self::bucket_cap(ctx.policy, ctx.scan_len, 0))
            }
        }
    }

    fn escalate(&self, ctx: &mut StrategyCtx<'_>) -> Option<usize> {
        if matches!(ctx.policy, ShiftPolicy::Fixed(_)) {
            return None;
        }
        if ctx.cursor.len() < 3 {
            // Forged snapshot: restore a usable cursor shape.
            ctx.cursor.resize(3, 0);
        }
        let mut active = Self::active(ctx.cursor);
        loop {
            let cap_b = Self::bucket_cap(ctx.policy, ctx.scan_len, active);
            if ctx.k < cap_b {
                // Grow within the active bucket's ceiling. The policy only
                // refuses past its own (full) cap, which `cap_b` never
                // exceeds, so this always yields a strictly larger k.
                let next = ctx.policy.escalate(ctx.scan_len, ctx.k)?;
                return Some(next.min(cap_b));
            }
            if active + 1 >= BUCKETS {
                return None;
            }
            // This bucket is capped out: hand the ordering priority to the
            // next-harder bucket and allow its larger ceiling. k never
            // shrinks, so eager caught-classification stays sound.
            active += 1;
            ctx.cursor[2] = active as u64;
        }
    }

    fn order_targets(&self, ctx: &mut StrategyCtx<'_>, targets: &mut Vec<usize>) {
        let (t1, t2) = Self::thresholds(ctx.cursor);
        let active = Self::active(ctx.cursor);
        // Active bucket first (easy-first within it, as the greedy scoring
        // wants candidates), then the remaining buckets in hardness order.
        targets.sort_by_key(|&i| {
            let h = ctx.hardness(i);
            let b = Self::bucket(h, t1, t2);
            (usize::from(b != active), b, h)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_name() {
        for id in ALL_STRATEGIES {
            assert_eq!(StrategyId::parse(id.name()), Some(id));
        }
        assert_eq!(StrategyId::parse("sideways"), None);
        assert_eq!(StrategyId::parse("ADI"), None, "names are case-sensitive");
    }

    #[test]
    fn default_is_the_papers_winner() {
        assert_eq!(StrategyId::default(), StrategyId::MostFaults);
        assert_eq!(
            StrategyId::default().as_selection(),
            Some(SelectionStrategy::MostFaults)
        );
    }

    #[test]
    fn legacy_flags_match_the_selection_enum() {
        for sel in [
            SelectionStrategy::Random,
            SelectionStrategy::Hardness,
            SelectionStrategy::MostFaults,
            SelectionStrategy::Weighted,
        ] {
            let id = StrategyId::from_selection(sel);
            assert_eq!(id.resolve().is_greedy(), sel.is_greedy());
            assert_eq!(
                id.resolve().weighted_scoring(),
                sel == SelectionStrategy::Weighted
            );
            assert_eq!(id.as_selection(), Some(sel));
        }
    }

    #[test]
    fn fingerprints_are_distinct_and_float_free() {
        let mut texts: Vec<String> = ALL_STRATEGIES
            .iter()
            .map(|id| id.resolve().fingerprint_text())
            .collect();
        for t in &texts {
            assert!(!t.contains('.'), "fingerprint text {t:?} smells of floats");
        }
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), ALL_STRATEGIES.len());
    }

    #[test]
    fn genome_policy_rejects_forged_cursors() {
        assert!(genome_policy(&[]).is_none());
        assert!(genome_policy(&[1, 8, 2, 1, 1]).is_none(), "short");
        assert!(genome_policy(&[1, 0, 2, 1, 1, 2]).is_none(), "zero den");
        assert!(genome_policy(&[9, 8, 2, 1, 1, 2]).is_none(), "start > 1");
        assert!(genome_policy(&[1, 8, 1, 1, 1, 2]).is_none(), "growth <= 1");
        assert!(genome_policy(&[1, 2, 2, 1, 1, 4]).is_none(), "max < start");
        let p = genome_policy(&[1, 8, 2, 1, 1, 2]).unwrap();
        assert_eq!(p, ShiftPolicy::default());
    }

    #[test]
    fn bucket_caps_are_monotone_and_end_at_the_policy_cap() {
        let policy = ShiftPolicy::default();
        let l = 100;
        let caps: Vec<usize> = (0..BUCKETS)
            .map(|b| HardnessBuckets::bucket_cap(&policy, l, b))
            .collect();
        assert!(caps.windows(2).all(|w| w[0] <= w[1]), "{caps:?}");
        assert_eq!(*caps.last().unwrap(), policy.cap(l));
    }
}
