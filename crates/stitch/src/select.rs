//! Vector-selection strategies (paper §6.3).

/// How the engine chooses which test vector to apply next.
///
/// All strategies generate candidate vectors by running constrained ATPG for
/// target faults from `f_u`; they differ in how targets are ordered and
/// whether candidates are scored:
///
/// * [`Random`](SelectionStrategy::Random) — targets in random order, first
///   successful candidate wins (the paper's baseline column).
/// * [`Hardness`](SelectionStrategy::Hardness) — targets ordered
///   hardest-first by SCOAP testability, first success wins; gives
///   hard-to-test faults first claim on the still-loose constraint.
/// * [`MostFaults`](SelectionStrategy::MostFaults) — generate several
///   candidates, fault-simulate each against `f_u` and pick the one
///   differentiating the most faults (the paper's winning greedy scheme).
/// * [`Weighted`](SelectionStrategy::Weighted) — like `MostFaults` but each
///   differentiated fault counts its SCOAP hardness, the paper's suggested
///   combination of the two schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionStrategy {
    /// Randomly ordered fault list; first generated vector wins.
    Random,
    /// Hardest-to-test faults first; first generated vector wins.
    Hardness,
    /// Greedy: the candidate catching the most `f_u` faults wins.
    #[default]
    MostFaults,
    /// Greedy with hardness weights.
    Weighted,
}

impl SelectionStrategy {
    /// Whether this strategy scores multiple candidates per cycle (the
    /// greedy schemes) or takes the first success.
    pub fn is_greedy(self) -> bool {
        matches!(
            self,
            SelectionStrategy::MostFaults | SelectionStrategy::Weighted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greediness() {
        assert!(!SelectionStrategy::Random.is_greedy());
        assert!(!SelectionStrategy::Hardness.is_greedy());
        assert!(SelectionStrategy::MostFaults.is_greedy());
        assert!(SelectionStrategy::Weighted.is_greedy());
    }

    #[test]
    fn default_is_the_papers_winner() {
        assert_eq!(SelectionStrategy::default(), SelectionStrategy::MostFaults);
    }
}
