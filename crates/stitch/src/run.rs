//! The driver of the cycle pipeline: the select → apply → classify loop,
//! termination/error taxonomy and final report assembly.

use std::error::Error;
use std::fmt;

use tvs_exec::TaskPanic;
use tvs_logic::{BitVec, Cube};
use tvs_netlist::NetlistError;

use tvs_atpg::PodemResult;
use tvs_fault::Fault;
use tvs_scan::CostModel;

use crate::engine::StitchEngine;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::state::RunState;
use crate::{CompressionMetrics, CycleRecord, StitchConfig};

/// Errors from the stitching engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum StitchError {
    /// The circuit has no flip-flops — nothing to stitch through.
    NoScanChain,
    /// The netlist could not be levelized.
    Netlist(NetlistError),
    /// A replayed vector's pinned bits disagree with the previous response.
    ReplayMismatch {
        /// 0-based cycle index of the offending vector.
        cycle: usize,
    },
    /// A pool worker panicked before any program existed (prescreen), so
    /// there is nothing to salvage. Mid-run panics instead end the run with
    /// [`Termination::WorkerPanic`] and a partial program.
    WorkerPanic {
        /// Stringified panic payload of the failed work item.
        message: String,
    },
    /// A resume snapshot was rejected.
    Snapshot(SnapshotError),
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::NoScanChain => write!(f, "circuit has no scan chain"),
            StitchError::Netlist(e) => write!(f, "netlist error: {e}"),
            StitchError::ReplayMismatch { cycle } => write!(
                f,
                "replayed vector {cycle} conflicts with the retained response bits"
            ),
            StitchError::WorkerPanic { message } => {
                write!(f, "worker panicked during the prescreen: {message}")
            }
            StitchError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl Error for StitchError {}

impl From<NetlistError> for StitchError {
    fn from(e: NetlistError) -> Self {
        StitchError::Netlist(e)
    }
}

impl From<SnapshotError> for StitchError {
    fn from(e: SnapshotError) -> Self {
        StitchError::Snapshot(e)
    }
}

/// How a stitched run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Termination {
    /// The flow ran to its natural end, fallback phase included.
    Complete,
    /// The work budget ran out at a stage boundary. The report's cycles and
    /// extra vectors form a valid (lint-clean) partial program.
    BudgetExhausted {
        /// Faults still in `f_u` when the run stopped.
        residual: Vec<Fault>,
    },
    /// A worker panicked mid-run. The cycles recorded before the failed
    /// stage form a valid partial program; the panic payload is preserved.
    WorkerPanic {
        /// Stringified panic payload of the lowest-index failed work item
        /// (deterministic at any thread count).
        message: String,
        /// Faults still in `f_u` when the run stopped.
        residual: Vec<Fault>,
    },
}

/// Resume/checkpoint options for [`StitchEngine::run_with`].
#[derive(Default)]
pub struct RunOptions<'cb> {
    /// Resume from a previously captured snapshot instead of starting
    /// fresh (the prescreen is skipped; its outcome is in the snapshot).
    pub resume: Option<Snapshot>,
    /// Emit a checkpoint every this many applied cycles (`0` = never).
    pub checkpoint_every: usize,
    /// Receives each emitted checkpoint; the caller persists it.
    pub on_checkpoint: Option<&'cb mut dyn FnMut(Snapshot)>,
    /// Receives a [`RunProgress`] after every applied cycle of the pipeline
    /// (the opening full shift-in included). Purely observational: the hook
    /// sees state, never steers it, so it cannot perturb the deterministic
    /// result stream — the serve layer feeds live `status` responses from it.
    pub on_progress: Option<&'cb mut dyn FnMut(RunProgress)>,
    /// Per-fault prescreen replay plan, aligned to the collapsed fault list:
    /// `Some(record)` replays the recorded verdicts without re-running
    /// simulation or PODEM for that fault, `None` recomputes them. The plan
    /// only changes *how* verdicts are obtained, never their values, budget
    /// charges or PRNG draws — a planned run is byte-identical to a cold
    /// one. The delta layer derives plans from cone-manifest diffs, where
    /// an unchanged fault support guarantees an unchanged verdict.
    pub prescreen_plan: Option<Vec<Option<PrescreenRecord>>>,
    /// Receives the [`PrescreenTrace`] once the prescreen finishes (never
    /// invoked on resumed runs — their prescreen outcome lives in the
    /// snapshot). The delta layer persists the trace as a cone manifest.
    pub on_prescreen: Option<&'cb mut dyn FnMut(PrescreenTrace)>,
}

/// A prescreen PODEM verdict, stripped of its witness cube: the part of the
/// per-fault outcome that must be replayed for a delta run to stay
/// byte-identical to a cold one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodemVerdict {
    /// The prover found a test (the fault stays tracked).
    Test,
    /// Proven untestable (classified prescreen-redundant).
    Untestable,
    /// The prover ran out of backtracks (tracked, but never targeted).
    Aborted,
}

impl PodemVerdict {
    /// One-letter code used by the manifest text form.
    pub fn code(self) -> char {
        match self {
            PodemVerdict::Test => 'T',
            PodemVerdict::Untestable => 'U',
            PodemVerdict::Aborted => 'A',
        }
    }

    /// Parses the one-letter manifest code.
    pub fn from_code(c: char) -> Option<Self> {
        Some(match c {
            'T' => PodemVerdict::Test,
            'U' => PodemVerdict::Untestable,
            'A' => PodemVerdict::Aborted,
            _ => return None,
        })
    }
}

/// One collapsed fault's recorded prescreen outcome: everything the replay
/// path needs to skip that fault's simulation rounds and deep PODEM proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrescreenRecord {
    /// Random-simulation round (0-based, < 8) where the fault was first
    /// detected, or `None` if the 8 rounds never caught it.
    pub first_detect_round: Option<u8>,
    /// Deep PODEM verdict and its backtrack count, when the prescreen ran
    /// the prover on this fault (`None` when simulation or static pruning
    /// already settled it).
    pub podem: Option<(PodemVerdict, u32)>,
}

/// The prescreen's full outcome, one record per collapsed fault, reported
/// through [`RunOptions::on_prescreen`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrescreenTrace {
    /// Per-fault records in collapsed fault-list order.
    pub records: Vec<PrescreenRecord>,
    /// How many faults were replayed from the plan end to end (simulation
    /// rounds and, where applicable, the PODEM verdict).
    pub reused: usize,
}

/// Live progress of an in-flight stitched run, reported through
/// [`RunOptions::on_progress`] at every cycle boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Cycles applied so far (the opening full shift-in counts as 1).
    pub cycle: usize,
    /// `|f_c|` — faults caught so far.
    pub caught: usize,
    /// `|f_h|` — faults currently hidden in the chain.
    pub hidden: usize,
    /// `|f_u|` — faults not yet differentiated.
    pub uncaught: usize,
}

/// Why a run stopped before its natural end.
pub(crate) enum StopCause {
    Budget,
    Worker(TaskPanic),
}

/// The full outcome of a stitched run.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchReport {
    /// Per-cycle records (first entry is the initial full shift-in).
    pub cycles: Vec<CycleRecord>,
    /// The shift sizes, `cycles[i].shift` collected for cost accounting.
    pub shifts: Vec<usize>,
    /// The closing flush length the engine decided on.
    pub final_flush: usize,
    /// Fallback full-shift vectors appended at the end.
    pub extra_vectors: Vec<BitVec>,
    /// Faults proven redundant (by unconstrained ATPG in the fallback).
    pub redundant: Vec<Fault>,
    /// Faults the fallback ATPG aborted on.
    pub aborted: Vec<Fault>,
    /// The headline `TV / ex / m / t` numbers.
    pub metrics: CompressionMetrics,
    /// Hidden-fault lifecycle counters `(entered, converted to caught,
    /// erased back to uncaught)` — the dynamics of the paper's §6.2.
    pub hidden_transitions: (usize, usize, usize),
    /// How the run ended: complete, out of budget, or a worker panic —
    /// the latter two still salvage a valid partial program.
    pub termination: Termination,
}

impl StitchEngine<'_> {
    /// Runs stitched test generation end to end and reports the paper's
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors from the baseline ATPG run.
    pub fn run(&self, config: &StitchConfig) -> Result<StitchReport, StitchError> {
        self.run_with(config, RunOptions::default())
    }

    /// Runs stitched test generation with resume/checkpoint control.
    ///
    /// A run resumed from a snapshot emitted by `opts.on_checkpoint` is
    /// **bit-identical** to one that never stopped, at any thread count:
    /// snapshots capture state (fault sets, program, PRNG, budget cursor),
    /// never timing.
    ///
    /// # Errors
    ///
    /// [`StitchError::Snapshot`] when `opts.resume` belongs to a different
    /// netlist or configuration, [`StitchError::WorkerPanic`] when a worker
    /// dies before any program exists (prescreen), plus the [`run`] errors.
    ///
    /// [`run`]: Self::run
    pub fn run_with(
        &self,
        config: &StitchConfig,
        mut opts: RunOptions<'_>,
    ) -> Result<StitchReport, StitchError> {
        let _timer = tvs_exec::span("stitch.run");
        let plan = opts.prescreen_plan.take();
        let mut run = match opts.resume.take() {
            Some(snapshot) => RunState::resume(self, config, snapshot)?,
            None => RunState::new(self, config, plan.as_deref())?,
        };
        if let Some(trace) = run.prescreen_trace.take() {
            if let Some(cb) = opts.on_prescreen.as_mut() {
                cb(trace);
            }
        }
        let l = self.chain.length();
        let baseline_rate = run.baseline_rate();

        // Cycle 1: a conventional full shift-in, but chosen by the same
        // selection machinery (constraint-free). Skipped on resume — the
        // snapshot already contains it.
        if run.cycles.is_empty() && run.sets.uncaught_count() > 0 && !run.budget.exhausted() {
            match run.select_vector(l, true) {
                Ok(Some(vector)) => {
                    if let Err(panic) = run.apply_cycle(l, &vector, true) {
                        run.stop = Some(StopCause::Worker(panic));
                    } else {
                        run.report_progress(&mut opts.on_progress);
                    }
                }
                Ok(None) => {}
                Err(panic) => run.stop = Some(StopCause::Worker(panic)),
            }
        }

        // A stitched cycle can only ride on a loaded chain: if the opening
        // full shift-in could not be selected at all (e.g. a PODEM abort
        // storm), skip the stitched phase and leave everything to the
        // fallback so `shifts[0] == L` holds for every emitted program.
        while run.stop.is_none()
            && !run.cycles.is_empty()
            && run.sets.uncaught_count() > 0
            && run.cycles.len() < config.max_cycles
        {
            // Stage boundary: the budget is only ever checked here, so a
            // stage that crosses the line completes before the run stops.
            if run.budget.exhausted() {
                run.stop = Some(StopCause::Budget);
                break;
            }
            if run.shift_exhausted(baseline_rate) {
                // lint:allow(SRC006) -- debug tracing gate; never influences results
                if std::env::var_os("TVS_DEBUG").is_some() {
                    eprintln!(
                        "[tvs] escalate from k={}: cycles={} caught={} hidden={} uncaught={}",
                        run.k,
                        run.cycles.len(),
                        run.sets.caught_count(),
                        run.sets.hidden_count(),
                        run.sets.uncaught_count()
                    );
                }
                match run.escalate_shift() {
                    Some(next) => {
                        run.k = next;
                        run.stagnant = 0;
                        run.select_failed = false;
                        run.window.clear();
                        run.failed_targets.clear();
                    }
                    None => break,
                }
            }
            let k = run.k;
            match run.select_vector(k, false) {
                Ok(Some(vector)) => {
                    if let Err(panic) = run.apply_cycle(k, &vector, false) {
                        run.stop = Some(StopCause::Worker(panic));
                        break;
                    }
                    run.report_progress(&mut opts.on_progress);
                    let caught = run.cycles.last().map(|c| c.newly_caught).unwrap_or(0);
                    if caught == 0 {
                        run.stagnant += 1;
                    } else {
                        run.stagnant = 0;
                    }
                    run.window.push_back((caught, run.cycle_cost(k)));
                    if run.window.len() > config.efficiency_window {
                        run.window.pop_front();
                    }
                    if opts.checkpoint_every > 0 && run.cycles.len() % opts.checkpoint_every == 0 {
                        if let Some(cb) = opts.on_checkpoint.as_mut() {
                            cb(run.snapshot());
                        }
                    }
                }
                Ok(None) => run.select_failed = true,
                Err(panic) => {
                    run.stop = Some(StopCause::Worker(panic));
                    break;
                }
            }
        }

        run.finish()
    }
}

impl RunState<'_, '_> {
    /// Feeds the `on_progress` hook from the current fault-set counts.
    fn report_progress(&self, hook: &mut Option<&mut dyn FnMut(RunProgress)>) {
        if let Some(cb) = hook.as_mut() {
            cb(RunProgress {
                cycle: self.cycles.len(),
                caught: self.sets.caught_count(),
                hidden: self.sets.hidden_count(),
                uncaught: self.sets.uncaught_count(),
            });
        }
    }

    /// Closing flush + conventional fallback, then metric assembly.
    pub(crate) fn finish(mut self) -> Result<StitchReport, StitchError> {
        let l = self.l();

        // Closing flush: find, per hidden fault, the shortest flush prefix
        // that reveals it; flush long enough for all of them (exact under
        // any observation transform).
        let mut final_flush = 0usize;
        if !self.cycles.is_empty() {
            let zeros = BitVec::zeros(l);
            let sh_good = self
                .eng
                .chain
                .shift(&self.good_image, &zeros, self.cfg.observe);
            for idx in self.sets.hidden_indices() {
                // Defensive: a hidden fault always carries an image; treat a
                // missing one as never-revealed rather than aborting.
                let Some(image) = self.sets.image(idx).cloned() else {
                    self.sets.set_uncaught(idx);
                    continue;
                };
                let sh_f = self.eng.chain.shift(&image, &zeros, self.cfg.observe);
                let first_diff = (0..l).find(|&t| sh_f.observed.get(t) != sh_good.observed.get(t));
                match first_diff {
                    Some(t) => {
                        final_flush = final_flush.max(t + 1);
                        self.sets.set_caught(idx);
                    }
                    None => self.sets.set_uncaught(idx),
                }
            }
            // Even with no hidden faults the last response is conventionally
            // checked with a closing shift of the last stitch size.
            if final_flush == 0 {
                final_flush = self.shifts.last().copied().unwrap_or(l);
            }
        }

        // Fallback: conventional vectors for whatever is left in f_u —
        // skipped entirely when the run already stopped (budget or worker
        // panic): the report then salvages the stitched program as-is and
        // lists the leftovers as the residual.
        let mut extra_vectors: Vec<BitVec> = Vec::new();
        let mut redundant: Vec<Fault> = std::mem::take(&mut self.prescreen_redundant);
        let prescreen_redundant_count = redundant.len();
        let mut aborted: Vec<Fault> = std::mem::take(&mut self.prescreen_aborted);
        let free = Cube::unspecified(self.eng.view.input_count());
        let mut remaining: Vec<usize> = self
            .sets
            .uncaught_indices()
            .into_iter()
            .filter(|i| !self.never_target.contains(i))
            .collect();
        let fallback_faults: Vec<Fault> = remaining.iter().map(|&i| self.sets.fault(i)).collect();
        while self.stop.is_none() && !remaining.is_empty() {
            // Stage boundary: an exhausted budget ends the fallback between
            // vectors, leaving the leftovers as the residual.
            if self.budget.exhausted() {
                self.stop = Some(StopCause::Budget);
                break;
            }
            let idx = remaining[0];
            match self.podem.generate(self.sets.fault(idx), &free) {
                PodemResult::Test(cube) => {
                    self.budget.charge(
                        1 + u64::from(self.podem.last_backtracks()) + remaining.len() as u64,
                    );
                    let bits = cube.random_fill(&mut self.rng);
                    let faults: Vec<Fault> =
                        remaining.iter().map(|&i| self.sets.fault(i)).collect();
                    let hits = self.detect(&bits, &faults);
                    let mut next = Vec::with_capacity(remaining.len());
                    for (slot, &fi) in remaining.iter().enumerate() {
                        if hits[slot] {
                            self.sets.set_caught(fi);
                        } else {
                            next.push(fi);
                        }
                    }
                    debug_assert!(
                        next.len() < remaining.len(),
                        "fallback vector must progress"
                    );
                    if next.len() == remaining.len() {
                        // Defensive: avoid livelock on a sim/ATPG disagreement.
                        aborted.push(self.sets.fault(idx));
                        next.retain(|&i| i != idx);
                    }
                    remaining = next;
                    extra_vectors.push(bits);
                }
                PodemResult::Untestable => {
                    self.budget
                        .charge(1 + u64::from(self.podem.last_backtracks()));
                    redundant.push(self.sets.fault(idx));
                    remaining.remove(0);
                }
                PodemResult::Aborted => {
                    self.budget
                        .charge(1 + u64::from(self.podem.last_backtracks()));
                    aborted.push(self.sets.fault(idx));
                    remaining.remove(0);
                }
            }
        }
        // The fallback phase is conventional test application, so it gets
        // conventional reverse-order compaction against the faults it was
        // responsible for.
        if extra_vectors.len() > 1 {
            extra_vectors = tvs_atpg::compact_patterns(
                self.eng.netlist,
                &self.eng.view,
                &fallback_faults,
                &extra_vectors,
            );
        }

        // Baseline for the ratios (generated up front in `new`).
        let baseline = &self.baseline;

        let model = CostModel {
            scan_len: l,
            pi_count: self.p(),
            po_count: self.q(),
        };
        let stitched_costs = if self.shifts.is_empty() {
            // Degenerate: everything handled by fallback vectors.
            model.full_costs(extra_vectors.len())
        } else {
            model.stitched_costs(&self.shifts, final_flush, extra_vectors.len())
        };
        let baseline_costs = model.full_costs(baseline.len());

        // Denominator: every tracked fault that is not proven redundant.
        // Prescreen-redundant faults were never tracked, so only the
        // fallback-found redundancies must be discounted here.
        let fallback_redundant = redundant.len() - prescreen_redundant_count;
        let testable = self.sets.len() - fallback_redundant;
        let coverage = if testable == 0 {
            1.0
        } else {
            self.sets.caught_count() as f64 / testable as f64
        };

        let metrics = CompressionMetrics::new(
            self.cycles.len(),
            extra_vectors.len(),
            baseline.len(),
            stitched_costs,
            baseline_costs,
            coverage,
        );

        tvs_exec::counter("stitch.extra_vectors").add(extra_vectors.len() as u64);
        // Degenerate runs (no stitched cycles, everything on fallback
        // vectors) have no program shape to check.
        if !self.shifts.is_empty() {
            tvs_lint::debug_assert_program_clean(
                &tvs_lint::ProgramSpec {
                    scan_len: l,
                    shifts: self.shifts.clone(),
                    final_flush,
                    extra_vectors: extra_vectors.len(),
                    uncaught_at_fallback: fallback_faults.len(),
                },
                "stitch::finish",
            );
        }
        let hidden_transitions = self.sets.transition_counts();
        let residual: Vec<Fault> = if self.stop.is_some() {
            self.sets
                .uncaught_indices()
                .into_iter()
                .map(|i| self.sets.fault(i))
                .collect()
        } else {
            Vec::new()
        };
        let termination = match self.stop.take() {
            None => Termination::Complete,
            Some(StopCause::Budget) => Termination::BudgetExhausted { residual },
            Some(StopCause::Worker(panic)) => Termination::WorkerPanic {
                message: panic.message,
                residual,
            },
        };
        Ok(StitchReport {
            cycles: self.cycles,
            shifts: self.shifts,
            final_flush,
            extra_vectors,
            redundant,
            aborted,
            metrics,
            hidden_transitions,
            termination,
        })
    }
}
