//! The per-cycle fault classification rule (paper §5).

use tvs_logic::BitVec;

/// How a fault is classified after one applied vector.
///
/// The rule is *exact* (lazy): a fault counts as caught only when a
/// difference was actually visible at the tester — at a primary output this
/// cycle, or in the bits shifted out of the chain. A difference confined to
/// the chain makes the fault hidden; no difference at all leaves/returns it
/// uncaught. See DESIGN.md §7 for how this relates to the paper's eager
/// phrasing (with a monotone shift policy and direct observation the two
/// agree; under horizontal XOR only the lazy rule is sound, because two
/// differing tapped cells can cancel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// A difference reached the tester: move to `f_c`.
    Caught,
    /// The post-capture chain image differs: move to (or stay in) `f_h`.
    Hidden,
    /// Indistinguishable from the fault-free machine: move to (or stay in)
    /// `f_u`.
    Uncaught,
}

impl Classification {
    /// Applies the §5 rule.
    ///
    /// * `observed_good` / `observed_faulty` — everything the tester saw
    ///   this cycle: the shifted-out stream followed by the primary-output
    ///   values.
    /// * `image_good` / `image_faulty` — the chain contents after capture.
    ///
    /// # Panics
    ///
    /// Panics if paired lengths differ.
    pub fn classify(
        observed_good: &BitVec,
        observed_faulty: &BitVec,
        image_good: &BitVec,
        image_faulty: &BitVec,
    ) -> Classification {
        assert_eq!(
            observed_good.len(),
            observed_faulty.len(),
            "observed stream lengths must match"
        );
        assert_eq!(
            image_good.len(),
            image_faulty.len(),
            "chain image lengths must match"
        );
        if observed_good != observed_faulty {
            Classification::Caught
        } else if image_good != image_faulty {
            Classification::Hidden
        } else {
            Classification::Uncaught
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn observed_difference_catches() {
        assert_eq!(
            Classification::classify(&bv("10"), &bv("11"), &bv("000"), &bv("000")),
            Classification::Caught
        );
    }

    #[test]
    fn observed_difference_wins_over_image_difference() {
        assert_eq!(
            Classification::classify(&bv("10"), &bv("00"), &bv("000"), &bv("111")),
            Classification::Caught
        );
    }

    #[test]
    fn image_only_difference_hides() {
        assert_eq!(
            Classification::classify(&bv("10"), &bv("10"), &bv("001"), &bv("101")),
            Classification::Hidden
        );
    }

    #[test]
    fn no_difference_stays_uncaught() {
        assert_eq!(
            Classification::classify(&bv(""), &bv(""), &bv("01"), &bv("01")),
            Classification::Uncaught
        );
    }

    #[test]
    #[should_panic(expected = "observed stream lengths")]
    fn mismatched_streams_panic() {
        Classification::classify(&bv("1"), &bv("10"), &bv("0"), &bv("0"));
    }
}
