//! Invariant tests of the stitching engine on generated circuits.
//!
//! Seeded randomized invariants (formerly proptest-based; rewritten as
//! deterministic loops so the workspace has no external test deps).

use tvs_circuits::{synthesize, SynthConfig};
use tvs_logic::Prng;
use tvs_scan::CaptureTransform;
use tvs_stitch::{ShiftPolicy, StitchConfig, StitchEngine};

fn circuit(seed: u64) -> tvs_netlist::Netlist {
    synthesize(
        "inv",
        &SynthConfig {
            inputs: 4,
            outputs: 3,
            flip_flops: 10,
            gates: 70,
            seed,
            depth_hint: None,
        },
    )
}

#[test]
fn shifts_are_monotone_and_schedules_replayable() {
    let mut meta = Prng::seed_from_u64(0x571A);
    for _ in 0..8 {
        let seed = meta.next_u64() % 200;
        let netlist = circuit(seed);
        let engine = StitchEngine::new(&netlist).expect("sequential");
        let cfg = StitchConfig::default();
        let report = engine.run(&cfg).expect("run");

        // Variable policy growth is monotone after the initial full shift.
        let stitched = &report.shifts[1..];
        for w in stitched.windows(2) {
            assert!(
                w[0] <= w[1],
                "shift schedule decreased: {:?}",
                report.shifts
            );
        }

        // Every generated schedule must be physically applicable.
        let vectors: Vec<_> = report.cycles.iter().map(|c| c.vector.clone()).collect();
        let replayed = engine.replay(&vectors, &report.shifts, report.final_flush, &cfg);
        assert!(replayed.is_ok(), "unreplayable schedule");
    }
}

#[test]
fn set_sizes_are_conserved_per_cycle() {
    let mut meta = Prng::seed_from_u64(0x571B);
    for _ in 0..8 {
        let seed = meta.next_u64() % 200;
        let netlist = circuit(seed);
        let engine = StitchEngine::new(&netlist).expect("sequential");
        let report = engine.run(&StitchConfig::default()).expect("run");
        let mut caught_so_far = 0usize;
        for (i, cycle) in report.cycles.iter().enumerate() {
            caught_so_far += cycle.newly_caught;
            // f_c grows monotonically; hidden+uncaught+caught = tracked.
            let tracked = cycle.hidden_after + cycle.uncaught_after + caught_so_far;
            assert!(
                tracked > 0 && cycle.shift >= 1,
                "cycle {i} inconsistent: {cycle:?}"
            );
        }
    }
}

#[test]
fn vertical_xor_never_reduces_coverage() {
    let mut meta = Prng::seed_from_u64(0x571C);
    for _ in 0..8 {
        let seed = meta.next_u64() % 100;
        let netlist = circuit(seed);
        let engine = StitchEngine::new(&netlist).expect("sequential");
        let plain = engine.run(&StitchConfig::default()).expect("run");
        let vxor = engine
            .run(&StitchConfig {
                capture: CaptureTransform::VerticalXor,
                ..StitchConfig::default()
            })
            .expect("run");
        assert!(
            vxor.metrics.fault_coverage >= plain.metrics.fault_coverage - 0.05,
            "VXOR coverage {} far below plain {}",
            vxor.metrics.fault_coverage,
            plain.metrics.fault_coverage
        );
    }
}

#[test]
fn fixed_policy_uses_one_shift_size() {
    let netlist = circuit(3);
    let engine = StitchEngine::new(&netlist).expect("sequential");
    let cfg = StitchConfig {
        policy: ShiftPolicy::Fixed(4),
        ..StitchConfig::default()
    };
    let report = engine.run(&cfg).expect("run");
    assert!(report.shifts[0] == netlist.dff_count());
    for &k in &report.shifts[1..] {
        assert_eq!(k, 4);
    }
}

#[test]
fn degenerate_one_cell_chain_works() {
    let netlist = synthesize(
        "one-cell",
        &SynthConfig {
            inputs: 3,
            outputs: 2,
            flip_flops: 1,
            gates: 20,
            seed: 1,
            depth_hint: None,
        },
    );
    let engine = StitchEngine::new(&netlist).expect("sequential");
    let report = engine.run(&StitchConfig::default()).expect("run");
    assert!(report.metrics.fault_coverage > 0.9);
}

#[test]
fn report_costs_match_the_cost_model() {
    use tvs_scan::CostModel;
    let netlist = circuit(17);
    let engine = StitchEngine::new(&netlist).expect("sequential");
    let report = engine.run(&StitchConfig::default()).expect("run");
    let view = netlist.scan_view().expect("valid");
    let model = CostModel {
        scan_len: netlist.dff_count(),
        pi_count: view.pi_count(),
        po_count: view.po_count(),
    };
    let expect = if report.shifts.is_empty() {
        model.full_costs(report.extra_vectors.len())
    } else {
        model.stitched_costs(
            &report.shifts,
            report.final_flush,
            report.extra_vectors.len(),
        )
    };
    assert_eq!(report.metrics.stitched_costs, expect);
    assert_eq!(
        report.metrics.baseline_costs,
        model.full_costs(report.metrics.baseline_vectors)
    );
}
