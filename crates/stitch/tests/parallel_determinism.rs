//! The stitching engine must produce bit-identical reports at every thread
//! count (DESIGN.md §6.4): parallel stages — prescreen fault simulation,
//! deep PODEM verdicts, candidate scoring, hidden/uncaught classification —
//! compute pure functions and reduce in input order.

use tvs_stitch::{StitchConfig, StitchEngine, ALL_STRATEGIES};

fn report_with_threads(netlist: &tvs_netlist::Netlist, threads: usize) -> String {
    let engine = StitchEngine::new(netlist).expect("sequential circuit");
    let cfg = StitchConfig {
        threads,
        ..StitchConfig::default()
    };
    let report = engine.run(&cfg).expect("run");
    format!("{report:?}")
}

#[test]
fn fig1_report_is_thread_count_invariant() {
    let netlist = tvs_circuits::fig1();
    let seq = report_with_threads(&netlist, 1);
    assert_eq!(
        seq,
        report_with_threads(&netlist, 8),
        "fig1: 1 vs 8 threads"
    );
    assert_eq!(
        seq,
        report_with_threads(&netlist, 3),
        "fig1: 1 vs 3 threads"
    );
}

#[test]
fn synthetic_profile_report_is_thread_count_invariant() {
    let netlist = tvs_circuits::synthesize(
        "det",
        &tvs_circuits::SynthConfig {
            inputs: 5,
            outputs: 4,
            flip_flops: 14,
            gates: 120,
            seed: 7,
            depth_hint: None,
        },
    );
    let seq = report_with_threads(&netlist, 1);
    assert_eq!(
        seq,
        report_with_threads(&netlist, 8),
        "synthetic: 1 vs 8 threads"
    );
}

#[test]
fn every_strategy_is_thread_count_invariant() {
    let netlist = tvs_circuits::synthesize(
        "det-sel",
        &tvs_circuits::SynthConfig {
            inputs: 4,
            outputs: 3,
            flip_flops: 10,
            gates: 80,
            seed: 21,
            depth_hint: None,
        },
    );
    let engine = StitchEngine::new(&netlist).expect("sequential circuit");
    for strategy in ALL_STRATEGIES {
        let run = |threads| {
            let cfg = StitchConfig {
                threads,
                strategy,
                ..StitchConfig::default()
            };
            format!("{:?}", engine.run(&cfg).expect("run"))
        };
        let seq = run(1);
        assert_eq!(seq, run(2), "{strategy:?}: 1 vs 2 threads");
        assert_eq!(seq, run(8), "{strategy:?}: 1 vs 8 threads");
    }
}
