//! End-to-end engine behaviour through the public API (formerly the
//! in-crate test module of the pre-split `engine.rs` monolith).

use tvs_logic::BitVec;
use tvs_netlist::{GateKind, Netlist, NetlistBuilder};
use tvs_stitch::{ShiftPolicy, StitchConfig, StitchEngine, StitchError};

fn fig1() -> Netlist {
    let mut b = NetlistBuilder::new("fig1");
    b.add_dff("a", "F").unwrap();
    b.add_dff("b", "E").unwrap();
    b.add_dff("c", "D").unwrap();
    b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
    b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
    b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
    b.build().unwrap()
}

fn bv(s: &str) -> BitVec {
    s.chars().map(|c| c == '1').collect()
}

#[test]
fn no_scan_chain_is_rejected() {
    let mut b = NetlistBuilder::new("comb");
    b.add_input("a").unwrap();
    b.add_gate("y", GateKind::Not, &["a"]).unwrap();
    b.mark_output("y").unwrap();
    let n = b.build().unwrap();
    assert!(matches!(
        StitchEngine::new(&n),
        Err(StitchError::NoScanChain)
    ));
}

#[test]
fn fig1_run_reaches_full_coverage() {
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    let report = engine.run(&StitchConfig::default()).unwrap();
    assert!(
        report.metrics.fault_coverage >= 1.0 - 1e-9,
        "coverage {}",
        report.metrics.fault_coverage
    );
    assert_eq!(report.redundant.len(), 1, "the paper's E-F/1");
    assert!(report.aborted.is_empty());
}

#[test]
fn fig1_compresses_versus_baseline() {
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    let cfg = StitchConfig {
        policy: ShiftPolicy::Fixed(2),
        ..StitchConfig::default()
    };
    let report = engine.run(&cfg).unwrap();
    assert!(report.metrics.time_ratio > 0.0);
    // With k = 2 of 3 the stitched stream must beat full shifting per
    // vector unless many extra vectors were needed.
    if report.extra_vectors.is_empty() {
        assert!(
            report.metrics.time_ratio <= 1.05,
            "t = {}",
            report.metrics.time_ratio
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    let a = engine.run(&StitchConfig::default()).unwrap();
    let b = engine.run(&StitchConfig::default()).unwrap();
    assert_eq!(a.shifts, b.shifts);
    assert_eq!(a.metrics.stitched_vectors, b.metrics.stitched_vectors);
    assert_eq!(
        a.cycles
            .iter()
            .map(|c| c.vector.clone())
            .collect::<Vec<_>>(),
        b.cycles
            .iter()
            .map(|c| c.vector.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn replay_reproduces_table1_catches() {
    // The paper's schedule: 110, then 2-bit stitches yielding 001, 100,
    // 010, closing with a 2-bit flush.
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    let vectors = vec![bv("110"), bv("001"), bv("100"), bv("010")];
    let trace = engine
        .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
        .unwrap();

    // Fault-free responses per the paper.
    let resp: Vec<String> = trace
        .cycles
        .iter()
        .map(|c| c.response.to_string())
        .collect();
    assert_eq!(resp, vec!["111", "010", "000", "010"]);

    // Every fault except the redundant E-F/1 is caught.
    let uncaught: Vec<String> = trace
        .rows
        .iter()
        .filter(|r| r.caught_at.is_none())
        .map(|r| r.fault.display_in(&n))
        .collect();
    assert_eq!(uncaught, vec!["E-F/1".to_string()]);

    // Spot-check the paper's hidden-fault story: F/0 is NOT caught in
    // cycle 0 (its effect hides in cell a) but in cycle 1.
    let f0 = trace
        .rows
        .iter()
        .find(|r| r.fault.display_in(&n) == "F/0")
        .expect("F/0 tracked");
    assert_eq!(f0.caught_at, Some(1));
    assert_eq!(f0.entries[0].response.to_string(), "011");
    // Its mutated second vector is 000 (not the intended 001).
    assert_eq!(f0.entries[1].vector.to_string(), "000");
    assert_eq!(f0.entries[1].response.to_string(), "000");
}

#[test]
fn replay_rejects_impossible_schedules() {
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    // Second vector 101: cell c would need to hold 1, but the shifted
    // response leaves a 1 only via cell a of response 111 -> c = 1 works;
    // pick something genuinely inconsistent: 011 needs c = 1 as well...
    // response 111 shifted by 2 gives c = 1, cells a,b free. So any
    // second vector with c = 0 is impossible.
    let vectors = vec![bv("110"), bv("010")];
    let err = engine
        .replay(&vectors, &[3, 2], 2, &StitchConfig::default())
        .unwrap_err();
    assert!(matches!(err, StitchError::ReplayMismatch { cycle: 1 }));
}

#[test]
fn hidden_faults_appear_during_fig1_replay() {
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    let vectors = vec![bv("110"), bv("001"), bv("100"), bv("010")];
    let trace = engine
        .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
        .unwrap();
    // F/1 and D-F/1 mutate the third vector to 101 per the paper.
    for name in ["F/1", "D-F/1"] {
        let row = trace.rows.iter().find(|r| r.fault.display_in(&n) == name);
        if let Some(row) = row {
            // (collapsing may merge D-F/1 into another representative)
            assert_eq!(row.caught_at, Some(2), "{name}");
            assert_eq!(row.entries[2].vector.to_string(), "101", "{name}");
        }
    }
}

#[test]
fn progress_hook_observes_every_cycle() {
    use tvs_stitch::{RunOptions, RunProgress};
    let n = fig1();
    let engine = StitchEngine::new(&n).unwrap();
    let cfg = StitchConfig::default();
    let mut seen: Vec<RunProgress> = Vec::new();
    let mut hook = |p: RunProgress| seen.push(p);
    let report = engine
        .run_with(
            &cfg,
            RunOptions {
                resume: None,
                checkpoint_every: 0,
                on_checkpoint: None,
                on_progress: Some(&mut hook),
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .unwrap();
    assert_eq!(seen.len(), report.cycles.len(), "one event per cycle");
    // Cycle numbers count up; caught counts never decrease; the final
    // event matches the report's totals.
    for (i, p) in seen.iter().enumerate() {
        assert_eq!(p.cycle, i + 1);
        if i > 0 {
            assert!(p.caught >= seen[i - 1].caught);
        }
    }
    let last = seen.last().unwrap();
    let total_caught: usize = report.cycles.iter().map(|c| c.newly_caught).sum();
    assert_eq!(last.caught, total_caught);

    // The hook must not perturb the run: a hook-free run is identical.
    let plain = engine.run(&cfg).unwrap();
    assert_eq!(plain, report, "observing the run must not change it");
}
