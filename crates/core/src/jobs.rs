//! Job admission, single-flight deduplication and artifact production.
//!
//! A [`JobTable`] sits between the protocol layer and the
//! [`tvs_exec::JobQueue`]. Every submission resolves to an
//! [`ArtifactKey`]; the table guarantees that at any moment **at most one
//! engine run per key is in flight**, no matter how many clients submit the
//! same circuit concurrently:
//!
//! 1. a live job for the key → the caller is attached to it (a *dedup hit*;
//!    `JobHandle`s are cloneable, all waiters share one result);
//! 2. a stored artifact for the key → a pre-resolved job is issued without
//!    touching the queue (a *cache hit*);
//! 3. otherwise the run is admitted to the bounded queue (or rejected with
//!    [`CoreError::Busy`]) and its artifact is persisted on completion.
//!
//! Submissions are **lint-gated**: before a fresh engine run is admitted,
//! the structural design rules and the testability dataflow run over the
//! parsed netlist, and any deny-level finding rejects the job with
//! [`CoreError::Rejected`] carrying the diagnostics as JSON — no engine run
//! starts, and the verdict is cached per key so identical resubmissions are
//! rejected without re-analysis.
//!
//! Submissions are **delta-aware**: a cache miss searches the store for the
//! nearest cached ancestor manifest (same interface and configuration, most
//! shared cone hashes) and derives a prescreen replay plan from it — clean
//! faults reuse the ancestor's verdicts verbatim, dirty ones recompute — and
//! every successful run persists its own cone manifest sidecar for future
//! edits to diff against. Replay changes where prescreen verdicts come from,
//! never their values, so a delta run's artifact is byte-identical to a cold
//! run's. Any manifest defect falls back to a cold run.
//!
//! Per-client **admission quotas** (opt-in via [`JobTable::with_client_quota`])
//! bound the in-flight engine runs any one client identity can hold; cache,
//! dedup and rejection hits are never charged against the quota.
//!
//! Counters: `serve.submits`, `serve.engine_runs`, `serve.cache_hits`,
//! `serve.dedup_hits`, `serve.rejected`, `serve.rejected_cache_hits`,
//! `serve.jobs_failed`, `serve.quota_rejected`, `delta.faults_reused`,
//! `delta.cones_dirty`, `delta.plans`, `delta.manifest_rejected` — all
//! through tvs-exec's stats layer so `tvs serve`'s `stats` op and
//! `tvs run --stats` read one ledger.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use std::collections::{BTreeMap, BTreeSet};

use tvs_delta::{plan_for, ConeManifest};
use tvs_exec::{JobHandle, JobQueue, QueueFull};
use tvs_netlist::{bench, Netlist};
use tvs_stitch::{
    PrescreenRecord, PrescreenTrace, RunOptions, RunProgress, Snapshot, StitchConfig, StitchEngine,
    StitchReport, Termination,
};

use crate::cache::{ArtifactKey, ArtifactStore, SubmissionIdentity};
use crate::error::CoreError;
use crate::json::Value;

/// The result a job resolves to: the artifact JSON text, or the engine's
/// error rendered for the wire.
pub type JobResult = Result<String, String>;

/// Lock-free progress cells a running job publishes and `status` reads.
#[derive(Debug, Default)]
pub struct ProgressCells {
    /// 0 = queued, 1 = running (set by the worker when the closure starts).
    started: AtomicUsize,
    cycle: AtomicUsize,
    caught: AtomicUsize,
    hidden: AtomicUsize,
    uncaught: AtomicUsize,
}

/// A point-in-time view of one job, the payload of `status`/`wait`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// `"queued"`, `"running"`, `"done"` or `"failed"`.
    pub state: &'static str,
    /// The job's artifact key.
    pub key: ArtifactKey,
    /// Cycles applied so far.
    pub cycle: usize,
    /// `|f_c|` so far.
    pub caught: usize,
    /// `|f_h|` so far.
    pub hidden: usize,
    /// `|f_u|` so far.
    pub uncaught: usize,
    /// The failure message when `state == "failed"`.
    pub error: Option<String>,
}

struct JobEntry {
    key: ArtifactKey,
    handle: JobHandle<JobResult>,
    progress: Arc<ProgressCells>,
}

#[derive(Default)]
struct TableInner {
    jobs: BTreeMap<String, JobEntry>,
    /// Live (not yet finished) job per key — the single-flight index.
    by_key: BTreeMap<u64, String>,
    /// Lint-rejection verdicts per key (diagnostics JSON). Rejections are a
    /// pure function of the submission, so they are cached like artifacts —
    /// resubmitting a denied netlist never re-runs the analysis.
    rejections: BTreeMap<u64, String>,
    /// Keys that already passed the lint gate (the accept-side memo).
    admitted: BTreeSet<u64>,
    /// Engine runs in flight per client identity (quota accounting).
    in_flight: BTreeMap<String, usize>,
    next_id: u64,
}

/// How a submission was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A fresh engine run was admitted to the queue.
    Miss,
    /// Served from the on-disk artifact store.
    CacheHit,
    /// Attached to an identical in-flight run.
    DedupHit,
}

impl Admission {
    /// The wire spelling (`"miss"`, `"cache-hit"`, `"dedup-hit"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Admission::Miss => "miss",
            Admission::CacheHit => "cache-hit",
            Admission::DedupHit => "dedup-hit",
        }
    }
}

/// The job table: admission control + single-flight + artifact persistence.
pub struct JobTable {
    queue: JobQueue<JobResult>,
    store: ArtifactStore,
    inner: Arc<Mutex<TableInner>>,
    /// Cycles between checkpoint snapshots while a job runs (0 = never).
    checkpoint_every: usize,
    /// Max in-flight engine runs per client identity (0 = unlimited).
    client_quota: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking job closure cannot leave shared state inconsistent: every
    // mutation below is a single map insert/remove.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl JobTable {
    /// Creates a table executing on `workers` threads with an admission
    /// bound of `capacity` open jobs, persisting artifacts to `store`.
    pub fn new(
        workers: usize,
        capacity: usize,
        checkpoint_every: usize,
        store: ArtifactStore,
    ) -> JobTable {
        JobTable {
            queue: JobQueue::new(workers, capacity),
            store,
            inner: Arc::new(Mutex::new(TableInner::default())),
            checkpoint_every,
            client_quota: 0,
        }
    }

    /// Caps the in-flight engine runs any single client identity may hold
    /// (0 = unlimited). Anonymous submissions are exempt; cache, dedup and
    /// rejection hits never count against the quota.
    pub fn with_client_quota(mut self, quota: usize) -> JobTable {
        self.client_quota = quota;
        self
    }

    /// The artifact store backing this table.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Open (admitted, unfinished) jobs in the queue.
    pub fn open_jobs(&self) -> usize {
        self.queue.open_jobs()
    }

    /// The queue's admission bound.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Total jobs issued since startup (all admission paths).
    pub fn jobs_issued(&self) -> u64 {
        lock(&self.inner).next_id
    }

    /// Blocks until every admitted job has finished.
    pub fn drain(&self) {
        self.queue.drain();
    }

    /// Records a fresh lint rejection for `key` (or returns the cached one
    /// if another submission raced this one to the verdict).
    fn reject(&self, key: ArtifactKey, diagnostics: String) -> CoreError {
        let mut inner = lock(&self.inner);
        if let Some(existing) = inner.rejections.get(&key.0) {
            tvs_exec::counter("serve.rejected_cache_hits").incr();
            return CoreError::Rejected {
                diagnostics: existing.clone(),
                cached: true,
            };
        }
        tvs_exec::counter("serve.rejected").incr();
        inner.rejections.insert(key.0, diagnostics.clone());
        CoreError::Rejected {
            diagnostics,
            cached: false,
        }
    }

    /// The cached rejection for `key`, if any.
    fn cached_rejection(&self, key: ArtifactKey) -> Option<CoreError> {
        let inner = lock(&self.inner);
        inner.rejections.get(&key.0).map(|diagnostics| {
            tvs_exec::counter("serve.rejected_cache_hits").incr();
            CoreError::Rejected {
                diagnostics: diagnostics.clone(),
                cached: true,
            }
        })
    }

    /// Submits `.bench` source for compression under `config`, optionally
    /// on behalf of a named `client` (quota accounting).
    ///
    /// Returns the issued job id and how the submission was satisfied.
    ///
    /// # Errors
    ///
    /// [`CoreError::Netlist`] when the source does not parse,
    /// [`CoreError::Rejected`] when deny-level lint findings block
    /// admission (structural builder errors and design-rule violations
    /// alike; the diagnostics ride along as JSON),
    /// [`CoreError::Busy`] when the queue is at capacity,
    /// [`CoreError::QuotaExceeded`] when the client is at its in-flight
    /// limit, and I/O errors from the artifact store.
    pub fn submit(
        &self,
        name: &str,
        bench_text: &str,
        config: StitchConfig,
        client: Option<&str>,
    ) -> Result<(String, Admission), CoreError> {
        tvs_exec::counter("serve.submits").incr();
        let netlist = match bench::parse(name, bench_text) {
            Ok(netlist) => netlist,
            Err(e) => {
                return Err(match tvs_lint::netlist_error_diagnostics(&e) {
                    // Structural builder errors are design-rule findings;
                    // the raw source text stands in for the canonical form
                    // the build never produced.
                    Some(diags) => {
                        let key = ArtifactKey::compute(bench_text, &config);
                        match self.cached_rejection(key) {
                            Some(hit) => hit,
                            None => self.reject(key, tvs_lint::render_json(&diags)),
                        }
                    }
                    None => CoreError::Netlist(e.to_string()),
                });
            }
        };
        let canonical = bench::to_string(&netlist);
        let identity = SubmissionIdentity::of(&netlist, &canonical, &config);
        let key = identity.key;

        if let Some(hit) = self.cached_rejection(key) {
            return Err(hit);
        }

        // Lint gate: structural rules + testability dataflow, run outside
        // the table lock (it is pure analysis). Accepted keys are memoized
        // so resubmissions and cache hits skip the analysis entirely.
        if !lock(&self.inner).admitted.contains(&key.0) {
            let diags =
                tvs_lint::admission_diagnostics(&netlist, &tvs_lint::TestabilityConfig::default());
            if tvs_lint::has_deny(&diags) {
                return Err(self.reject(key, tvs_lint::render_json(&diags)));
            }
            lock(&self.inner).admitted.insert(key.0);
        }

        // Fast path checks happen under the table lock so two identical
        // submissions cannot both decide to start an engine run.
        if let Some(hit) = self.fast_path(&mut lock(&self.inner), key)? {
            return Ok(hit);
        }

        // A genuine miss: search the store for the nearest ancestor
        // manifest and derive the prescreen replay plan — outside the
        // lock, since support hashing is real work.
        let plan = self.delta_plan(&identity, &netlist, &config);

        let mut inner = lock(&self.inner);
        // An identical submission may have raced ahead while manifests
        // were being diffed; single-flight still holds because this check
        // and the enqueue below share one critical section.
        if let Some(hit) = self.fast_path(&mut inner, key)? {
            return Ok(hit);
        }

        if self.client_quota > 0 {
            if let Some(client) = client {
                let open = inner.in_flight.get(client).copied().unwrap_or(0);
                if open >= self.client_quota {
                    tvs_exec::counter("serve.quota_rejected").incr();
                    return Err(CoreError::QuotaExceeded {
                        client: client.to_owned(),
                        open,
                        limit: self.client_quota,
                    });
                }
            }
        }

        let id = next_id(&mut inner);
        let progress = Arc::new(ProgressCells::default());
        let resume = self.store.load_snapshot(key)?;
        let closure_progress = Arc::clone(&progress);
        let closure_inner = Arc::clone(&self.inner);
        let closure_store = self.store.clone();
        let closure_id = id.clone();
        let closure_client = if self.client_quota > 0 {
            client.map(str::to_owned)
        } else {
            None
        };
        let checkpoint_every = self.checkpoint_every;
        let handle = self
            .queue
            .submit(move || {
                let result = run_job(
                    &netlist,
                    &config,
                    key,
                    resume,
                    plan,
                    checkpoint_every,
                    &closure_store,
                    &closure_progress,
                );
                // Retire the single-flight entry: later identical submissions
                // must consult the artifact store, not a finished handle.
                let mut inner = lock(&closure_inner);
                if let Some(client) = &closure_client {
                    if let Some(open) = inner.in_flight.get_mut(client) {
                        *open = open.saturating_sub(1);
                        if *open == 0 {
                            inner.in_flight.remove(client);
                        }
                    }
                }
                if inner.by_key.get(&key.0) == Some(&closure_id) {
                    inner.by_key.remove(&key.0);
                }
                result
            })
            .map_err(|QueueFull { open, capacity }| {
                // Roll back: the id was minted but no job exists under it.
                CoreError::Busy { open, capacity }
            })?;
        if self.client_quota > 0 {
            if let Some(client) = client {
                *inner.in_flight.entry(client.to_owned()).or_insert(0) += 1;
            }
        }
        inner.by_key.insert(key.0, id.clone());
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                key,
                handle,
                progress,
            },
        );
        Ok((id, Admission::Miss))
    }

    /// The dedup and cache-hit fast paths, evaluated under the caller's
    /// table lock.
    fn fast_path(
        &self,
        inner: &mut TableInner,
        key: ArtifactKey,
    ) -> Result<Option<(String, Admission)>, CoreError> {
        if let Some(existing) = inner.by_key.get(&key.0) {
            let id = existing.clone();
            if inner.jobs.contains_key(&id) {
                tvs_exec::counter("serve.dedup_hits").incr();
                return Ok(Some((id, Admission::DedupHit)));
            }
        }
        if let Some(artifact) = self.store.load(key)? {
            tvs_exec::counter("serve.cache_hits").incr();
            let id = next_id(inner);
            let progress = Arc::new(ProgressCells::default());
            progress.started.store(1, Ordering::Release);
            inner.jobs.insert(
                id.clone(),
                JobEntry {
                    key,
                    handle: JobHandle::ready(Ok(artifact)),
                    progress,
                },
            );
            return Ok(Some((id, Admission::CacheHit)));
        }
        Ok(None)
    }

    /// Searches the store for the nearest cached ancestor and derives the
    /// prescreen replay plan. Every failure mode — no scan view, no
    /// ancestor, unreadable store, mismatching or forged manifest — is a
    /// cold run, never an error: reuse is an optimization, not a contract.
    fn delta_plan(
        &self,
        identity: &SubmissionIdentity,
        netlist: &Netlist,
        config: &StitchConfig,
    ) -> Option<Vec<Option<PrescreenRecord>>> {
        let (interface_sig, cones) = match (identity.interface_sig, identity.cones.as_ref()) {
            (Some(sig), Some(cones)) => (sig, cones),
            _ => return None,
        };
        let fingerprint = config.fingerprint();
        let (_, manifest) = self
            .store
            .find_ancestor(interface_sig, fingerprint, cones, identity.key)
            .ok()
            .flatten()?;
        match plan_for(&manifest, netlist, fingerprint) {
            Ok(plan) => {
                tvs_exec::counter("delta.plans").incr();
                tvs_exec::counter("delta.cones_dirty").add(plan.cones_dirty as u64);
                Some(plan.plan)
            }
            Err(_) => {
                tvs_exec::counter("delta.manifest_rejected").incr();
                None
            }
        }
    }

    /// A point-in-time status of `job_id`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownJob`] for ids this table never issued.
    pub fn status(&self, job_id: &str) -> Result<JobStatus, CoreError> {
        let inner = lock(&self.inner);
        let entry = inner
            .jobs
            .get(job_id)
            .ok_or_else(|| CoreError::UnknownJob(job_id.to_owned()))?;
        Ok(entry_status(entry))
    }

    /// Blocks until `job_id` finishes, then returns its final status.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownJob`] for ids this table never issued.
    pub fn wait(&self, job_id: &str) -> Result<JobStatus, CoreError> {
        let (handle, entry_snapshot) = {
            let inner = lock(&self.inner);
            let entry = inner
                .jobs
                .get(job_id)
                .ok_or_else(|| CoreError::UnknownJob(job_id.to_owned()))?;
            (
                entry.handle.clone(),
                (entry.key, Arc::clone(&entry.progress)),
            )
        };
        // Block outside the table lock — other clients keep submitting.
        let _ = handle.wait();
        let (key, progress) = entry_snapshot;
        Ok(entry_status(&JobEntry {
            key,
            handle,
            progress,
        }))
    }

    /// Blocks until `job_id` finishes and returns its artifact JSON text.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownJob`] for unknown ids, [`CoreError::JobFailed`]
    /// when the engine run failed.
    pub fn fetch(&self, job_id: &str) -> Result<Arc<String>, CoreError> {
        let handle = {
            let inner = lock(&self.inner);
            inner
                .jobs
                .get(job_id)
                .map(|e| e.handle.clone())
                .ok_or_else(|| CoreError::UnknownJob(job_id.to_owned()))?
        };
        match handle.wait() {
            Ok(result) => match result.as_ref() {
                Ok(artifact) => Ok(Arc::new(artifact.clone())),
                Err(message) => Err(CoreError::JobFailed(message.clone())),
            },
            Err(panic) => Err(CoreError::JobFailed(panic.to_string())),
        }
    }
}

fn next_id(inner: &mut TableInner) -> String {
    inner.next_id += 1;
    format!("j{}", inner.next_id)
}

fn entry_status(entry: &JobEntry) -> JobStatus {
    let p = &entry.progress;
    let (state, error) = match entry.handle.try_get() {
        Some(Ok(result)) => match result.as_ref() {
            Ok(_) => ("done", None),
            Err(message) => ("failed", Some(message.clone())),
        },
        Some(Err(panic)) => ("failed", Some(panic.to_string())),
        None if p.started.load(Ordering::Acquire) == 1 => ("running", None),
        None => ("queued", None),
    };
    JobStatus {
        state,
        key: entry.key,
        cycle: p.cycle.load(Ordering::Acquire),
        caught: p.caught.load(Ordering::Acquire),
        hidden: p.hidden.load(Ordering::Acquire),
        uncaught: p.uncaught.load(Ordering::Acquire),
        error,
    }
}

/// Executes one engine run end to end: resume-or-cold stitch (with an
/// optional prescreen replay plan), artifact rendering, persistence,
/// checkpoint cleanup, manifest sidecar emission.
#[allow(clippy::too_many_arguments)]
fn run_job(
    netlist: &Netlist,
    config: &StitchConfig,
    key: ArtifactKey,
    resume_text: Option<String>,
    plan: Option<Vec<Option<PrescreenRecord>>>,
    checkpoint_every: usize,
    store: &ArtifactStore,
    progress: &ProgressCells,
) -> JobResult {
    progress.started.store(1, Ordering::Release);
    tvs_exec::counter("serve.engine_runs").incr();
    let (report, trace) = match run_engine(
        netlist,
        config,
        resume_text,
        plan,
        checkpoint_every,
        store,
        key,
        progress,
    ) {
        Ok(outcome) => outcome,
        Err(message) => {
            tvs_exec::counter("serve.jobs_failed").incr();
            return Err(message);
        }
    };
    let artifact = render_artifact(netlist, &report, config, key).to_text();
    if let Err(e) = store.store(key, &artifact) {
        tvs_exec::counter("serve.jobs_failed").incr();
        return Err(e.to_string());
    }
    // Persist the cone manifest so future edits can diff against this run.
    // Best-effort: a failed sidecar write costs future reuse, never
    // correctness. Resumed runs skip the prescreen and emit no trace.
    if let Some(trace) = trace {
        tvs_exec::counter("delta.faults_reused").add(trace.reused as u64);
        if let Ok(manifest) = ConeManifest::build(netlist, config.fingerprint(), &trace.records) {
            if store.store_manifest(key, &manifest.to_text()).is_err() {
                tvs_exec::counter("delta.manifest_write_failed").incr();
            }
        }
    }
    if let Err(e) = store.remove_snapshot(key) {
        // The artifact is already final; a stale snapshot only costs disk.
        tvs_exec::counter("serve.snapshot_cleanup_failed").incr();
        let _ = e;
    }
    Ok(artifact)
}

#[allow(clippy::too_many_arguments)]
fn run_engine(
    netlist: &Netlist,
    config: &StitchConfig,
    resume_text: Option<String>,
    plan: Option<Vec<Option<PrescreenRecord>>>,
    checkpoint_every: usize,
    store: &ArtifactStore,
    key: ArtifactKey,
    progress: &ProgressCells,
) -> Result<(StitchReport, Option<PrescreenTrace>), String> {
    let engine = StitchEngine::new(netlist).map_err(|e| e.to_string())?;
    let resume = resume_text.and_then(|text| Snapshot::parse(&text).ok());
    let resumed = resume.is_some();

    let mut trace = None;
    let mut on_prescreen = |t: PrescreenTrace| trace = Some(t);
    let mut on_progress = |p: RunProgress| {
        progress.cycle.store(p.cycle, Ordering::Release);
        progress.caught.store(p.caught, Ordering::Release);
        progress.hidden.store(p.hidden, Ordering::Release);
        progress.uncaught.store(p.uncaught, Ordering::Release);
    };
    let mut on_checkpoint = |snap: Snapshot| {
        // Checkpoint persistence is best-effort: a failed write costs crash
        // resumability, never correctness.
        if store.store_snapshot(key, &snap.to_text()).is_err() {
            tvs_exec::counter("serve.checkpoint_write_failed").incr();
        }
    };
    let attempt = engine.run_with(
        config,
        RunOptions {
            resume,
            checkpoint_every,
            on_checkpoint: Some(&mut on_checkpoint),
            on_progress: Some(&mut on_progress),
            prescreen_plan: plan.clone(),
            on_prescreen: Some(&mut on_prescreen),
        },
    );
    match attempt {
        Ok(report) => Ok((report, trace)),
        // A stale or incompatible on-disk checkpoint (e.g. from an older
        // config sharing the key by collision) must not fail the job: fall
        // back to a cold run.
        Err(tvs_stitch::StitchError::Snapshot(_)) if resumed => {
            tvs_exec::counter("serve.snapshot_rejected").incr();
            let mut trace = None;
            let mut on_prescreen = |t: PrescreenTrace| trace = Some(t);
            let mut on_progress = |p: RunProgress| {
                progress.cycle.store(p.cycle, Ordering::Release);
                progress.caught.store(p.caught, Ordering::Release);
                progress.hidden.store(p.hidden, Ordering::Release);
                progress.uncaught.store(p.uncaught, Ordering::Release);
            };
            let mut on_checkpoint = |snap: Snapshot| {
                if store.store_snapshot(key, &snap.to_text()).is_err() {
                    tvs_exec::counter("serve.checkpoint_write_failed").incr();
                }
            };
            engine
                .run_with(
                    config,
                    RunOptions {
                        resume: None,
                        checkpoint_every,
                        on_checkpoint: Some(&mut on_checkpoint),
                        on_progress: Some(&mut on_progress),
                        prescreen_plan: plan,
                        on_prescreen: Some(&mut on_prescreen),
                    },
                )
                .map(|report| (report, trace))
                .map_err(|e| e.to_string())
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Renders the artifact document: identity, Table 2–5 metrics, and the full
/// tester program. The rendering is a pure function of the report, which is
/// itself bit-identical at any thread count — so the artifact text is too.
pub fn render_artifact(
    netlist: &Netlist,
    report: &StitchReport,
    config: &StitchConfig,
    key: ArtifactKey,
) -> Value {
    let program = tvs_ate::TestProgram::from_report(netlist, report, config);
    let m = &report.metrics;
    let (entered, converted, erased) = report.hidden_transitions;
    let termination = match &report.termination {
        Termination::Complete => "complete",
        Termination::BudgetExhausted { .. } => "budget-exhausted",
        Termination::WorkerPanic { .. } => "worker-panic",
    };
    let metrics = Value::Obj(vec![
        ("tv".into(), Value::num_u64(m.stitched_vectors as u64)),
        ("ex".into(), Value::num_u64(m.extra_vectors as u64)),
        ("atv".into(), Value::num_u64(m.baseline_vectors as u64)),
        ("m".into(), Value::num_f64(m.memory_ratio)),
        ("t".into(), Value::num_f64(m.time_ratio)),
        ("coverage".into(), Value::num_f64(m.fault_coverage)),
        ("cycles".into(), Value::num_u64(report.cycles.len() as u64)),
        (
            "final_flush".into(),
            Value::num_u64(report.final_flush as u64),
        ),
        ("hidden_entered".into(), Value::num_u64(entered as u64)),
        ("hidden_converted".into(), Value::num_u64(converted as u64)),
        ("hidden_erased".into(), Value::num_u64(erased as u64)),
        ("termination".into(), Value::str(termination)),
    ]);
    Value::Obj(vec![
        ("key".into(), Value::str(key.to_string())),
        ("circuit".into(), Value::str(netlist.name())),
        (
            "config_fingerprint".into(),
            Value::str(format!("{:016x}", config.fingerprint())),
        ),
        ("metrics".into(), metrics),
        ("program".into(), Value::str(program.to_text())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(tag: &str) -> JobTable {
        let dir =
            std::env::temp_dir().join(format!("tvs-core-admit-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        JobTable::new(1, 4, 0, ArtifactStore::open(&dir).unwrap())
    }

    #[test]
    fn cyclic_netlist_is_rejected_with_diagnostics_then_served_from_cache() {
        let table = table("cyclic");
        let bench = "INPUT(a)\nOUTPUT(y)\nb = AND(a, c)\nc = NOT(b)\ny = AND(a, b)\n";
        let config = StitchConfig::default();
        match table.submit("cyclic", bench, config.clone(), None) {
            Err(CoreError::Rejected {
                diagnostics,
                cached,
            }) => {
                assert!(!cached, "first verdict must be fresh");
                assert!(diagnostics.contains("IR004"), "{diagnostics}");
                assert!(diagnostics.contains("\"deny\":1"), "{diagnostics}");
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
        match table.submit("cyclic", bench, config, None) {
            Err(CoreError::Rejected { cached, .. }) => {
                assert!(cached, "resubmission must hit the rejection cache");
            }
            other => panic!("expected cached rejection, got {other:?}"),
        }
        // No job was ever issued for the rejected submissions.
        assert_eq!(table.jobs_issued(), 0);
    }

    #[test]
    fn syntax_errors_keep_the_plain_netlist_error_path() {
        let table = table("syntax");
        match table.submit("bad", "this is not bench\n", StitchConfig::default(), None) {
            Err(CoreError::Netlist(message)) => {
                assert!(message.contains("parse error"), "{message}");
            }
            other => panic!("expected a netlist parse error, got {other:?}"),
        }
    }
}
