//! A minimal, dependency-free JSON value model for the wire protocol and
//! the on-disk artifact format.
//!
//! Numbers are kept as their **raw source text** (`Value::Num(String)`), so a
//! parsed document re-serializes byte-identically and no float round-trip can
//! perturb a cached artifact. Objects preserve insertion order; serialization
//! is a pure function of the value, which is what makes artifacts
//! content-addressable.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its exact source text (e.g. `"0.43"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a number node from an unsigned integer.
    pub fn num_u64(n: u64) -> Value {
        Value::Num(n.to_string())
    }

    /// Builds a number node from a float, fixed to six decimal places so the
    /// rendering is a deterministic function of the bits.
    pub fn num_f64(x: f64) -> Value {
        Value::Num(format!("{x:.6}"))
    }

    /// Builds a string node.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an integral number node.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact, deterministic serialization (no whitespace).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(s) => out.push_str(s),
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(pos: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        pos,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte {c:#04x}"))),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {lit:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(err(start, "malformed number"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err(start, "non-utf8 number"))?
        .to_owned();
    // Validate without adopting the parsed representation: the raw text is
    // what round-trips.
    raw.parse::<f64>()
        .map_err(|_| err(start, "malformed number"))?;
    Ok(Value::Num(raw))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-utf8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "malformed \\u escape"))?;
                        // Surrogate pairs are not needed by this protocol;
                        // unpaired surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar at a time.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "non-utf8 string content"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_number_text() {
        let doc = r#"{"a":0.43,"b":[1,2.50,-3e2],"c":"x\ny","d":null,"e":true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_text(), doc);
        assert_eq!(v.get("a").unwrap(), &Value::Num("0.43".into()));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_text(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":"#).is_err());
        assert!(parse(r#"["unterminated"#).is_err());
        assert!(parse("01abc").is_err());
    }

    #[test]
    fn escapes_survive_a_round_trip() {
        let v = Value::Obj(vec![("k\"ey".into(), Value::str("a\\b\n\tc\u{1}"))]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse(r#"{"n":7,"s":"x","b":false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }
}
