//! The serving core's error taxonomy, free of any transport vocabulary.

use std::fmt;
use std::io;

/// Everything the job/cache/queue core can fail with. Transports (the TCP
/// daemon's `ServeError`, the fleet coordinator's `FleetError`) wrap these
/// into their own wire taxonomies; the core stays protocol-agnostic.
#[derive(Debug)]
pub enum CoreError {
    /// The job queue is at capacity; the caller should shed load.
    Busy {
        /// Jobs admitted and not yet finished.
        open: usize,
        /// The queue's admission bound.
        capacity: usize,
    },
    /// The submitting client is at its in-flight job quota; the caller
    /// should wait for one of its open jobs to finish.
    QuotaExceeded {
        /// The client identity that hit its quota.
        client: String,
        /// The client's jobs currently in flight.
        open: usize,
        /// The per-client admission limit.
        limit: usize,
    },
    /// A job id this table never issued (or has no record of).
    UnknownJob(String),
    /// The job ran and failed; the message is the engine's error.
    JobFailed(String),
    /// The submitted netlist failed to parse.
    Netlist(String),
    /// The submitted netlist parsed but was rejected by deny-level lint
    /// rules at admission; no engine run was started.
    Rejected {
        /// The lint findings as a rendered JSON document
        /// (`{"diagnostics":[...],"counts":{...}}`).
        diagnostics: String,
        /// `true` when the verdict came from the rejection cache rather
        /// than a fresh analysis.
        cached: bool,
    },
    /// The submitted stitch configuration is invalid.
    Config(String),
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (usually a path).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl CoreError {
    /// Convenience constructor for I/O failures.
    pub fn io(context: impl Into<String>, source: io::Error) -> CoreError {
        CoreError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Busy { open, capacity } => {
                write!(f, "server busy: {open} of {capacity} job slots in flight")
            }
            CoreError::QuotaExceeded {
                client,
                open,
                limit,
            } => {
                write!(
                    f,
                    "client {client:?} at its admission quota: {open} of {limit} jobs in flight"
                )
            }
            CoreError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            CoreError::JobFailed(m) => write!(f, "job failed: {m}"),
            CoreError::Netlist(m) => write!(f, "netlist rejected: {m}"),
            CoreError::Rejected { diagnostics, .. } => {
                write!(
                    f,
                    "netlist rejected by lint admission: {}",
                    diagnostics.trim_end()
                )
            }
            CoreError::Config(m) => write!(f, "configuration rejected: {m}"),
            CoreError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
