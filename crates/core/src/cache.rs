//! The content-addressed artifact store.
//!
//! An artifact's identity is a function of **what** is compressed and
//! **how**. The *what* half is the netlist's Merkle root
//! ([`tvs_delta::netlist_root`]): per-gate cone hashes rolled bottom-up,
//! combined with the interface signature — so formatting, comments,
//! declaration order *and gate renaming-free structural identity* cannot
//! split the cache, while any cone or interface change does. Netlists
//! without a scan view (combinational cycles, which lint rejects anyway)
//! fall back to hashing the canonicalized `.bench` text. The *how* half
//! reuses the snapshot fingerprint and hashes the work budget back in: the
//! snapshot fingerprint deliberately excludes `budget` (a resumed run may
//! get a fresh allowance), but an exhausted budget truncates the run and
//! therefore changes the emitted artifact. `threads` stays excluded —
//! results are bit-identical at any worker count, which is precisely what
//! makes them cacheable.
//!
//! Writes go through a temporary file followed by an atomic rename, so a
//! crashed server never leaves a truncated artifact that a warm start would
//! serve as truth. Alongside each artifact the store keeps two sidecars:
//! the job's latest checkpoint snapshot (`<key>.tvsnap`; a resubmission
//! after a crash resumes instead of recomputing) and the run's cone
//! manifest (`<key>.manifest`; a later submission of an *edited* netlist
//! diffs against it and replays clean prescreen verdicts).
//!
//! # Eviction
//!
//! With a byte cap set ([`ArtifactStore::with_cap`]) the store evicts
//! least-recently-used keys until it fits. Recency is an insertion-tick
//! ledger — a logical counter bumped on every store and load — never a
//! clock read, so eviction order is a deterministic function of the access
//! sequence. The key touched most recently is never evicted, even when it
//! alone exceeds the cap. Counters: `cache.evictions` (keys evicted),
//! `cache.bytes` (bytes resident after the latest mutation).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use tvs_delta::{cone_table, interface_signature, netlist_root, ConeManifest};
use tvs_netlist::Netlist;
use tvs_stitch::{fnv1a, StitchConfig};

use crate::error::CoreError;

/// The 64-bit content address of an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArtifactKey(pub u64);

impl ArtifactKey {
    /// Derives the key from canonical netlist text and a configuration.
    ///
    /// This is the *fallback* identity, used when the netlist has no scan
    /// view; parseable submissions go through [`SubmissionIdentity::of`],
    /// which keys on the Merkle root instead.
    pub fn compute(canonical_bench: &str, config: &StitchConfig) -> ArtifactKey {
        let bench_hash = fnv1a(canonical_bench.as_bytes());
        let ident = format!(
            "{bench_hash:016x}|{:016x}|{:?}",
            config.fingerprint(),
            config.budget
        );
        ArtifactKey(fnv1a(ident.as_bytes()))
    }

    /// Derives the key from a netlist Merkle root and a configuration.
    pub fn from_root(root: u64, config: &StitchConfig) -> ArtifactKey {
        let ident = format!(
            "root {root:016x}|{:016x}|{:?}",
            config.fingerprint(),
            config.budget
        );
        ArtifactKey(fnv1a(ident.as_bytes()))
    }

    /// Parses the 16-hex-digit rendering produced by `Display`.
    pub fn parse(text: &str) -> Option<ArtifactKey> {
        (text.len() == 16)
            .then(|| u64::from_str_radix(text, 16).ok())
            .flatten()
            .map(ArtifactKey)
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Everything the serving layers derive from one submission's netlist: the
/// artifact key plus, when the netlist has a scan view, the Merkle pieces
/// delta reuse and fleet routing are built from.
#[derive(Debug, Clone)]
pub struct SubmissionIdentity {
    /// The artifact key (root-based when possible, text-based otherwise).
    pub key: ArtifactKey,
    /// The netlist Merkle root, when a scan view exists.
    pub root: Option<u64>,
    /// The interface signature, when a scan view exists.
    pub interface_sig: Option<u64>,
    /// The cone table, when a scan view exists.
    pub cones: Option<Vec<(String, u64)>>,
}

impl SubmissionIdentity {
    /// Computes the identity of one submission. Every admission path —
    /// job table, fleet coordinator, CLI — must go through this function,
    /// or their keys disagree and the cache splits.
    pub fn of(netlist: &Netlist, canonical: &str, config: &StitchConfig) -> SubmissionIdentity {
        match netlist.scan_view() {
            Ok(view) => {
                let interface_sig = interface_signature(netlist);
                let cones = cone_table(netlist, &view);
                let root = netlist_root(interface_sig, &cones);
                SubmissionIdentity {
                    key: ArtifactKey::from_root(root, config),
                    root: Some(root),
                    interface_sig: Some(interface_sig),
                    cones: Some(cones),
                }
            }
            Err(_) => SubmissionIdentity {
                key: ArtifactKey::compute(canonical, config),
                root: None,
                interface_sig: None,
                cones: None,
            },
        }
    }

    /// The routing family: one value for every edit of the same design
    /// (same interface) under the same configuration.
    pub fn family(&self, config: &StitchConfig) -> u64 {
        match self.interface_sig {
            Some(sig) => tvs_delta::family_key(sig, config.fingerprint()),
            None => self.key.0,
        }
    }
}

/// The LRU ledger: logical recency ticks and resident bytes per key,
/// plus the byte cap itself — shared across clones so the cap can be
/// adjusted on a live store (the daemon's `cache-cap` op).
#[derive(Debug, Default)]
struct Ledger {
    tick: u64,
    cap: u64,
    entries: BTreeMap<u64, LedgerEntry>,
}

#[derive(Debug, Clone, Copy)]
struct LedgerEntry {
    tick: u64,
    bytes: u64,
}

impl Ledger {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    fn touch(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.tick = tick;
        }
    }
}

/// On-disk artifact + checkpoint + manifest store rooted at one cache
/// directory, with optional deterministic LRU eviction.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    ledger: Arc<Mutex<Ledger>>,
}

fn lock(m: &Mutex<Ledger>) -> MutexGuard<'_, Ledger> {
    // The ledger is a plain map; every mutation is complete at any panic
    // point, so poison carries no signal here.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The sidecar extensions one key owns on disk.
const KEY_EXTENSIONS: [&str; 3] = ["json", "tvsnap", "manifest"];

impl ArtifactStore {
    /// Opens (creating if needed) an unbounded store at `dir`.
    ///
    /// Pre-existing entries seed the recency ledger in key order, so a
    /// freshly opened store evicts deterministically regardless of
    /// directory enumeration order.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactStore, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CoreError::io(dir.display().to_string(), e))?;
        let store = ArtifactStore {
            dir,
            ledger: Arc::new(Mutex::new(Ledger::default())),
        };
        store.seed_ledger()?;
        Ok(store)
    }

    /// Sets the byte cap (0 = unbounded) and applies it to whatever is
    /// already resident.
    pub fn with_cap(self, cap_bytes: u64) -> ArtifactStore {
        self.set_cap(cap_bytes);
        self
    }

    /// Adjusts the byte cap on a live store (0 = unbounded), evicting
    /// immediately if the resident set no longer fits. All clones of this
    /// store observe the new cap.
    pub fn set_cap(&self, cap_bytes: u64) {
        let mut ledger = lock(&self.ledger);
        ledger.cap = cap_bytes;
        self.enforce_cap(&mut ledger);
        publish_bytes(&ledger);
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte cap (0 = unbounded).
    pub fn cap_bytes(&self) -> u64 {
        lock(&self.ledger).cap
    }

    fn seed_ledger(&self) -> Result<(), CoreError> {
        let mut keys: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| CoreError::io(self.dir.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::io(self.dir.display().to_string(), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((stem, ext)) = name.split_once('.') else {
                continue;
            };
            if KEY_EXTENSIONS.contains(&ext) {
                if let Some(key) = ArtifactKey::parse(stem) {
                    keys.push(key.0);
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let mut ledger = lock(&self.ledger);
        for key in keys {
            ledger.tick += 1;
            let entry = LedgerEntry {
                tick: ledger.tick,
                bytes: self.resident_bytes(ArtifactKey(key)),
            };
            ledger.entries.insert(key, entry);
        }
        publish_bytes(&ledger);
        Ok(())
    }

    /// Sums the on-disk sizes of every file the key owns.
    fn resident_bytes(&self, key: ArtifactKey) -> u64 {
        KEY_EXTENSIONS
            .iter()
            .map(|ext| {
                fs::metadata(self.dir.join(format!("{key}.{ext}")))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Re-measures a key after a write, bumps its recency and applies the
    /// cap. The just-touched key is exempt from this round of eviction.
    fn account(&self, key: ArtifactKey) {
        let bytes = self.resident_bytes(key);
        let mut ledger = lock(&self.ledger);
        ledger.tick += 1;
        let entry = LedgerEntry {
            tick: ledger.tick,
            bytes,
        };
        ledger.entries.insert(key.0, entry);
        self.enforce_cap(&mut ledger);
        publish_bytes(&ledger);
    }

    /// Evicts least-recently-used keys until the cap fits, never touching
    /// the most recently used one.
    fn enforce_cap(&self, ledger: &mut Ledger) {
        if ledger.cap == 0 {
            return;
        }
        while ledger.total_bytes() > ledger.cap && ledger.entries.len() > 1 {
            let newest = ledger
                .entries
                .iter()
                .max_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k);
            let victim = ledger
                .entries
                .iter()
                .filter(|(k, _)| Some(**k) != newest)
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            ledger.entries.remove(&victim);
            for ext in KEY_EXTENSIONS {
                // Missing files are fine: not every key has all sidecars.
                let _ = fs::remove_file(self.dir.join(format!("{:016x}.{ext}", victim)));
            }
            tvs_exec::counter("cache.evictions").incr();
        }
    }

    fn artifact_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Path of the checkpoint snapshot kept while `key` is being computed.
    pub fn snapshot_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.tvsnap"))
    }

    /// Path of the cone manifest sidecar for `key`.
    pub fn manifest_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.manifest"))
    }

    /// Loads a cached artifact, `None` on a cold key.
    pub fn load(&self, key: ArtifactKey) -> Result<Option<String>, CoreError> {
        let loaded = read_optional(&self.artifact_path(key))?;
        if loaded.is_some() {
            lock(&self.ledger).touch(key.0);
        }
        Ok(loaded)
    }

    /// Persists an artifact atomically (temp file + rename).
    pub fn store(&self, key: ArtifactKey, artifact: &str) -> Result<(), CoreError> {
        write_atomic(&self.artifact_path(key), artifact)?;
        self.account(key);
        Ok(())
    }

    /// Loads the pending checkpoint for `key`, `None` if absent.
    pub fn load_snapshot(&self, key: ArtifactKey) -> Result<Option<String>, CoreError> {
        read_optional(&self.snapshot_path(key))
    }

    /// Persists a checkpoint atomically.
    pub fn store_snapshot(&self, key: ArtifactKey, text: &str) -> Result<(), CoreError> {
        write_atomic(&self.snapshot_path(key), text)?;
        self.account(key);
        Ok(())
    }

    /// Drops the checkpoint once its artifact is final. Missing files are
    /// fine — a clean cold run never wrote one.
    pub fn remove_snapshot(&self, key: ArtifactKey) -> Result<(), CoreError> {
        match fs::remove_file(self.snapshot_path(key)) {
            Ok(()) => {
                self.account(key);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CoreError::io(
                self.snapshot_path(key).display().to_string(),
                e,
            )),
        }
    }

    /// Loads the cone manifest sidecar for `key`, `None` if absent.
    pub fn load_manifest(&self, key: ArtifactKey) -> Result<Option<String>, CoreError> {
        read_optional(&self.manifest_path(key))
    }

    /// Persists a cone manifest atomically.
    pub fn store_manifest(&self, key: ArtifactKey, text: &str) -> Result<(), CoreError> {
        write_atomic(&self.manifest_path(key), text)?;
        self.account(key);
        Ok(())
    }

    /// Finds the nearest cached ancestor of a submission: among every
    /// parseable manifest with the same interface signature and
    /// configuration fingerprint (excluding the submission's own key), the
    /// one sharing the most `(gate name, cone hash)` pairs with `cones`.
    /// Ties break toward the smallest key, so discovery is deterministic.
    ///
    /// Unparseable or mismatching-root sidecars are skipped (counted as
    /// `delta.manifest_rejected`), never trusted.
    pub fn find_ancestor(
        &self,
        interface_sig: u64,
        config_fingerprint: u64,
        cones: &[(String, u64)],
        exclude: ArtifactKey,
    ) -> Result<Option<(ArtifactKey, ConeManifest)>, CoreError> {
        let mut keys: Vec<ArtifactKey> = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| CoreError::io(self.dir.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::io(self.dir.display().to_string(), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".manifest") {
                if let Some(key) = ArtifactKey::parse(stem) {
                    if key != exclude {
                        keys.push(key);
                    }
                }
            }
        }
        keys.sort_unstable();

        let target: BTreeMap<&str, u64> = cones
            .iter()
            .map(|(name, hash)| (name.as_str(), *hash))
            .collect();
        let mut best: Option<(usize, ArtifactKey, ConeManifest)> = None;
        for key in keys {
            let Some(text) = self.load_manifest(key)? else {
                continue;
            };
            let manifest = match ConeManifest::parse(&text) {
                Ok(m) => m,
                Err(_) => {
                    tvs_exec::counter("delta.manifest_rejected").incr();
                    continue;
                }
            };
            if manifest.interface_sig != interface_sig
                || manifest.config_fingerprint != config_fingerprint
            {
                continue;
            }
            let score = manifest
                .cones
                .iter()
                .filter(|(name, hash)| target.get(name.as_str()) == Some(hash))
                .count();
            // Strictly-better wins; the key sort above settles ties.
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, key, manifest));
            }
        }
        Ok(best.map(|(_, key, manifest)| (key, manifest)))
    }
}

/// Publishes the resident-bytes gauge.
fn publish_bytes(ledger: &Ledger) {
    tvs_exec::counter("cache.bytes").set(ledger.total_bytes());
}

fn read_optional(path: &Path) -> Result<Option<String>, CoreError> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(CoreError::io(path.display().to_string(), e)),
    }
}

fn write_atomic(path: &Path, text: &str) -> Result<(), CoreError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text)
        .and_then(|()| fs::rename(&tmp, path))
        .map_err(|e| CoreError::io(path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_tracks_content_not_formatting() {
        let cfg = StitchConfig::default();
        let a = ArtifactKey::compute("INPUT(a)\n", &cfg);
        let b = ArtifactKey::compute("INPUT(a)\n", &cfg);
        let c = ArtifactKey::compute("INPUT(b)\n", &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn key_tracks_config_and_budget_but_not_threads() {
        let base = StitchConfig::default();
        let bench = "INPUT(a)\n";
        let k0 = ArtifactKey::compute(bench, &base);

        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(k0, ArtifactKey::compute(bench, &seeded));

        let mut budgeted = base.clone();
        budgeted.budget = Some(1000);
        assert_ne!(k0, ArtifactKey::compute(bench, &budgeted));

        let mut threaded = base.clone();
        threaded.threads = 7;
        assert_eq!(k0, ArtifactKey::compute(bench, &threaded));
    }

    #[test]
    fn rooted_key_is_comment_proof_and_structure_sensitive() {
        use tvs_netlist::bench;
        let cfg = StitchConfig::default();
        let a = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let b = "# renamed file, same circuit\nINPUT(a)\nOUTPUT(y)\n\ny = NOT(a)\n";
        let c = "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n";
        let ident = |text: &str| {
            let n = bench::parse("t", text).unwrap();
            SubmissionIdentity::of(&n, &bench::to_string(&n), &cfg)
        };
        let (ia, ib, ic) = (ident(a), ident(b), ident(c));
        assert_eq!(ia.key, ib.key);
        assert_eq!(ia.root, ib.root);
        assert_ne!(ia.key, ic.key);
        // Same interface, different logic: same family (delta routing works
        // across edits), different key.
        assert_eq!(ia.family(&cfg), ic.family(&cfg));
    }

    #[test]
    fn store_round_trips_and_overwrites_atomically() {
        let dir = std::env::temp_dir().join(format!("tvs-serve-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        let key = ArtifactKey(42);
        assert_eq!(store.load(key).unwrap(), None);
        store.store(key, "{\"v\":1}").unwrap();
        assert_eq!(store.load(key).unwrap().as_deref(), Some("{\"v\":1}"));
        store.store(key, "{\"v\":2}").unwrap();
        assert_eq!(store.load(key).unwrap().as_deref(), Some("{\"v\":2}"));

        assert_eq!(store.load_snapshot(key).unwrap(), None);
        store.store_snapshot(key, "snap").unwrap();
        assert_eq!(store.load_snapshot(key).unwrap().as_deref(), Some("snap"));
        store.remove_snapshot(key).unwrap();
        store.remove_snapshot(key).unwrap(); // idempotent
        assert_eq!(store.load_snapshot(key).unwrap(), None);

        assert_eq!(store.load_manifest(key).unwrap(), None);
        store.store_manifest(key, "m").unwrap();
        assert_eq!(store.load_manifest(key).unwrap().as_deref(), Some("m"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_oldest_first_and_spares_the_newest() {
        let dir = std::env::temp_dir().join(format!("tvs-cache-lru-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap().with_cap(64);
        let payload = "x".repeat(30);
        store.store(ArtifactKey(1), &payload).unwrap();
        store.store(ArtifactKey(2), &payload).unwrap();
        // Both fit (60 <= 64). Touch key 1 so key 2 becomes the LRU victim.
        assert!(store.load(ArtifactKey(1)).unwrap().is_some());
        store.store(ArtifactKey(3), &payload).unwrap();
        assert!(store.load(ArtifactKey(3)).unwrap().is_some(), "newest kept");
        assert!(
            store.load(ArtifactKey(1)).unwrap().is_some(),
            "recently touched key survives"
        );
        assert_eq!(store.load(ArtifactKey(2)).unwrap(), None, "LRU evicted");

        // A single oversized entry is kept: never evict the newest.
        let huge = "y".repeat(200);
        store.store(ArtifactKey(9), &huge).unwrap();
        assert!(store.load(ArtifactKey(9)).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_store_seeds_the_ledger_deterministically() {
        let dir = std::env::temp_dir().join(format!("tvs-cache-seed-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = ArtifactStore::open(&dir).unwrap();
            for k in [5u64, 3, 8] {
                store.store(ArtifactKey(k), "0123456789").unwrap();
            }
        }
        // Reopen with a cap that holds two entries: seeding orders recency
        // by key, so key 3 (smallest) is the deterministic victim.
        let store = ArtifactStore::open(&dir).unwrap().with_cap(25);
        assert_eq!(store.load(ArtifactKey(3)).unwrap(), None);
        assert!(store.load(ArtifactKey(5)).unwrap().is_some());
        assert!(store.load(ArtifactKey(8)).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
