//! The content-addressed artifact store.
//!
//! An artifact's identity is a function of **what** is compressed and
//! **how**: the FNV-1a fingerprint of the canonicalized `.bench` source
//! (parse → [`tvs_netlist::bench::to_string`], so formatting, comments and
//! declaration order cannot split the cache) combined with the
//! [`StitchConfig`] fingerprint. The config half reuses the snapshot
//! fingerprint and hashes the work budget back in: the snapshot fingerprint
//! deliberately excludes `budget` (a resumed run may get a fresh allowance),
//! but an exhausted budget truncates the run and therefore changes the
//! emitted artifact. `threads` stays excluded — results are bit-identical at
//! any worker count, which is precisely what makes them cacheable.
//!
//! Writes go through a temporary file followed by an atomic rename, so a
//! crashed server never leaves a truncated artifact that a warm start would
//! serve as truth. Alongside each pending artifact the store keeps the job's
//! latest checkpoint snapshot (`<key>.tvsnap`); a resubmission after a crash
//! resumes instead of recomputing.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tvs_stitch::{fnv1a, StitchConfig};

use crate::error::CoreError;

/// The 64-bit content address of an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArtifactKey(pub u64);

impl ArtifactKey {
    /// Derives the key from canonical netlist text and a configuration.
    pub fn compute(canonical_bench: &str, config: &StitchConfig) -> ArtifactKey {
        let bench_hash = fnv1a(canonical_bench.as_bytes());
        let ident = format!(
            "{bench_hash:016x}|{:016x}|{:?}",
            config.fingerprint(),
            config.budget
        );
        ArtifactKey(fnv1a(ident.as_bytes()))
    }

    /// Parses the 16-hex-digit rendering produced by `Display`.
    pub fn parse(text: &str) -> Option<ArtifactKey> {
        (text.len() == 16)
            .then(|| u64::from_str_radix(text, 16).ok())
            .flatten()
            .map(ArtifactKey)
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// On-disk artifact + checkpoint store rooted at one cache directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactStore, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CoreError::io(dir.display().to_string(), e))?;
        Ok(ArtifactStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn artifact_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Path of the checkpoint snapshot kept while `key` is being computed.
    pub fn snapshot_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.tvsnap"))
    }

    /// Loads a cached artifact, `None` on a cold key.
    pub fn load(&self, key: ArtifactKey) -> Result<Option<String>, CoreError> {
        read_optional(&self.artifact_path(key))
    }

    /// Persists an artifact atomically (temp file + rename).
    pub fn store(&self, key: ArtifactKey, artifact: &str) -> Result<(), CoreError> {
        write_atomic(&self.artifact_path(key), artifact)
    }

    /// Loads the pending checkpoint for `key`, `None` if absent.
    pub fn load_snapshot(&self, key: ArtifactKey) -> Result<Option<String>, CoreError> {
        read_optional(&self.snapshot_path(key))
    }

    /// Persists a checkpoint atomically.
    pub fn store_snapshot(&self, key: ArtifactKey, text: &str) -> Result<(), CoreError> {
        write_atomic(&self.snapshot_path(key), text)
    }

    /// Drops the checkpoint once its artifact is final. Missing files are
    /// fine — a clean cold run never wrote one.
    pub fn remove_snapshot(&self, key: ArtifactKey) -> Result<(), CoreError> {
        match fs::remove_file(self.snapshot_path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CoreError::io(
                self.snapshot_path(key).display().to_string(),
                e,
            )),
        }
    }
}

fn read_optional(path: &Path) -> Result<Option<String>, CoreError> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(CoreError::io(path.display().to_string(), e)),
    }
}

fn write_atomic(path: &Path, text: &str) -> Result<(), CoreError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text)
        .and_then(|()| fs::rename(&tmp, path))
        .map_err(|e| CoreError::io(path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_tracks_content_not_formatting() {
        let cfg = StitchConfig::default();
        let a = ArtifactKey::compute("INPUT(a)\n", &cfg);
        let b = ArtifactKey::compute("INPUT(a)\n", &cfg);
        let c = ArtifactKey::compute("INPUT(b)\n", &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn key_tracks_config_and_budget_but_not_threads() {
        let base = StitchConfig::default();
        let bench = "INPUT(a)\n";
        let k0 = ArtifactKey::compute(bench, &base);

        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(k0, ArtifactKey::compute(bench, &seeded));

        let mut budgeted = base.clone();
        budgeted.budget = Some(1000);
        assert_ne!(k0, ArtifactKey::compute(bench, &budgeted));

        let mut threaded = base.clone();
        threaded.threads = 7;
        assert_eq!(k0, ArtifactKey::compute(bench, &threaded));
    }

    #[test]
    fn key_display_round_trips() {
        let key = ArtifactKey(0x00ab_cdef_0123_4567);
        assert_eq!(ArtifactKey::parse(&key.to_string()), Some(key));
        assert_eq!(ArtifactKey::parse("xyz"), None);
    }

    #[test]
    fn store_round_trips_and_overwrites_atomically() {
        let dir = std::env::temp_dir().join(format!("tvs-serve-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        let key = ArtifactKey(42);
        assert_eq!(store.load(key).unwrap(), None);
        store.store(key, "{\"v\":1}").unwrap();
        assert_eq!(store.load(key).unwrap().as_deref(), Some("{\"v\":1}"));
        store.store(key, "{\"v\":2}").unwrap();
        assert_eq!(store.load(key).unwrap().as_deref(), Some("{\"v\":2}"));

        assert_eq!(store.load_snapshot(key).unwrap(), None);
        store.store_snapshot(key, "snap").unwrap();
        assert_eq!(store.load_snapshot(key).unwrap().as_deref(), Some("snap"));
        store.remove_snapshot(key).unwrap();
        store.remove_snapshot(key).unwrap(); // idempotent
        assert_eq!(store.load_snapshot(key).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
