//! **tvs-core** — the transport-agnostic serving core.
//!
//! Stitched test generation (see `tvs-stitch`) is a pure function of
//! `(netlist, configuration)`. This crate packages everything a *service*
//! built on that purity needs, with no opinion about how requests arrive:
//!
//! * a deterministic **JSON value model** ([`json`]) whose serialization is
//!   a pure function of the value (numbers keep their raw source text), so
//!   artifacts re-serialize byte-identically;
//! * a **content-addressed artifact cache** ([`ArtifactStore`]) keyed by
//!   [`ArtifactKey`] — the FNV fingerprint of the canonicalized `.bench`
//!   source combined with the stitch configuration fingerprint;
//! * a **single-flight job table** ([`JobTable`]) with bounded admission
//!   over the [`tvs_exec::JobQueue`]: concurrent identical submissions
//!   coalesce onto one engine run, cache hits never touch the queue, and a
//!   full queue is a typed [`CoreError::Busy`] instead of a backlog.
//!
//! Both the single-node daemon (`tvs-serve`) and the fleet coordinator's
//! routing layer (`tvs-fleet`) build on this crate: the daemon wires the
//! table to a TCP protocol, the coordinator reuses the key derivation and
//! artifact model to shard submissions across many daemons by consistent
//! hashing. Failures are the transport-free [`CoreError`]; each transport
//! maps them onto its own wire taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
pub mod jobs;
pub mod json;

pub use cache::{ArtifactKey, ArtifactStore, SubmissionIdentity};
pub use error::CoreError;
pub use jobs::{render_artifact, Admission, JobStatus, JobTable};
