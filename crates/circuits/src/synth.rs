//! Deterministic synthetic sequential circuit generation.

use tvs_logic::Prng;
use tvs_netlist::{GateKind, Netlist, NetlistBuilder};

/// Shape of a synthetic circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Flip-flop count (scan length).
    pub flip_flops: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// RNG seed; equal seeds give bit-identical netlists.
    pub seed: u64,
    /// Logic-depth override; `None` derives depth from the gate count.
    /// Real benchmarks vary here — s35932 is famously shallow (and thus
    /// almost entirely easy-to-test, the property behind the paper's most
    /// drastic compression row).
    pub depth_hint: Option<usize>,
}

/// Synthesizes a random-but-reproducible sequential circuit.
///
/// The generator aims for ISCAS89-like structure rather than arbitrary
/// random logic:
///
/// * gate kinds follow an ISCAS89-ish mix (NAND/NOR-heavy, occasional
///   XOR/NOT/BUF), arities mostly 2 with a tail to 4;
/// * each gate preferentially consumes signals that have no consumer yet,
///   so logic cones stay connected and almost every signal is observable —
///   dangling logic would distort fault statistics;
/// * a locality window biases inputs toward recently created gates, giving
///   realistic depth instead of a 2-level soup;
/// * primary outputs and flip-flop data inputs are drawn from late,
///   still-unconsumed gates.
///
/// # Panics
///
/// Panics if the shape is degenerate (no sources, no gates, or fewer gates
/// than needed to drive every output and flip-flop).
///
/// # Examples
///
/// ```
/// use tvs_circuits::{synthesize, SynthConfig};
///
/// let netlist = synthesize("demo", &SynthConfig {
///     inputs: 4, outputs: 2, flip_flops: 8, gates: 60, seed: 7, depth_hint: None,
/// });
/// let stats = netlist.stats();
/// assert_eq!(stats.dffs, 8);
/// assert_eq!(stats.combinational_gates, 60);
/// ```
pub fn synthesize(name: &str, config: &SynthConfig) -> Netlist {
    assert!(
        config.inputs + config.flip_flops > 0,
        "a circuit needs at least one source"
    );
    assert!(config.gates > 0, "a circuit needs at least one gate");
    assert!(
        config.gates >= config.outputs.max(1),
        "not enough gates to drive every output"
    );

    let mut rng = Prng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::new(name);

    // Structure plan. Real ISCAS89 circuits are modular: each flip-flop's
    // next-state function depends on a handful of nearby flip-flops plus
    // globally fanned-out control inputs, so combinational cones are narrow.
    // We reproduce that with column-partitioned logic: flip-flops are dealt
    // into columns of ~6 (in chain order), gates mostly stay within their
    // column, PIs are shared control signals, and only a small fraction of
    // pins cross columns.
    let depth = config
        .depth_hint
        .unwrap_or_else(|| (((config.gates as f64).ln() * 2.2).round() as usize).clamp(4, 42));
    let depth = depth.clamp(1, config.gates);
    let columns = config.flip_flops.div_ceil(6).max(1);

    // Signal pool.
    let mut signals: Vec<String> = Vec::new();
    let mut column_of: Vec<usize> = Vec::new();
    let mut consumers: Vec<u32> = Vec::new();

    for i in 0..config.inputs {
        let nm = format!("pi{i}");
        b.add_input(&nm).expect("fresh name");
        signals.push(nm);
        column_of.push(usize::MAX); // global control signal
        consumers.push(0);
    }
    // Flip-flop outputs are level-0 sources of their column; the DFFs are
    // declared at the end once their D-net drivers exist (the builder
    // resolves names at build time).
    for i in 0..config.flip_flops {
        signals.push(format!("ff{i}"));
        column_of.push(i * columns / config.flip_flops.max(1));
        consumers.push(0);
    }

    // Gate kind mix, roughly ISCAS89: NAND/NOR heavy, almost no XOR.
    const KINDS: &[(GateKind, u32)] = &[
        (GateKind::And, 18),
        (GateKind::Nand, 24),
        (GateKind::Or, 14),
        (GateKind::Nor, 20),
        (GateKind::Not, 14),
        (GateKind::Buf, 4),
        (GateKind::Xor, 2),
        (GateKind::Xnor, 1),
    ];
    let kind_total: u32 = KINDS.iter().map(|&(_, w)| w).sum();

    // Per-column signal pools.
    let mut by_column: Vec<Vec<usize>> = vec![Vec::new(); columns];
    for (i, &c) in column_of.iter().enumerate() {
        if c != usize::MAX {
            by_column[c].push(i);
        }
    }

    let mut gate_no = 0usize;
    for lv in 1..=depth {
        let quota = config.gates / depth + usize::from(lv <= config.gates % depth);
        // Not-yet-consumed signals, per column; drained first so no logic
        // dangles mid-cone.
        let mut unconsumed: Vec<Vec<usize>> = vec![Vec::new(); columns];
        for (c, pool) in by_column.iter().enumerate() {
            for &i in pool {
                if consumers[i] == 0 {
                    unconsumed[c].push(i);
                }
            }
        }

        let mut new_signals: Vec<(usize, usize)> = Vec::new(); // (signal, column)
        for gq in 0..quota {
            let col = gq * columns / quota.max(1);
            let mut roll = rng.gen_range(0..kind_total as usize) as u32;
            let mut kind = GateKind::Nand;
            for &(k, w) in KINDS {
                if roll < w {
                    kind = k;
                    break;
                }
                roll -= w;
            }
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => match rng.gen_range(0..10) {
                    0..=6 => 2,
                    7..=8 => 3,
                    _ => 4,
                },
            };
            let mut fanin: Vec<usize> = Vec::with_capacity(arity);
            for _ in 0..arity {
                let idx = if !unconsumed[col].is_empty() && rng.gen_bool(0.7) {
                    let j = rng.gen_range(0..unconsumed[col].len());
                    unconsumed[col].swap_remove(j)
                } else if config.inputs > 0 && rng.gen_bool(0.25) {
                    // Globally fanned-out control input.
                    rng.gen_range(0..config.inputs)
                } else {
                    // Same column mostly; a small cross-column coupling.
                    let c = if rng.gen_bool(0.85) || columns == 1 {
                        col
                    } else {
                        (col + 1 + rng.gen_range(0..columns - 1)) % columns
                    };
                    if by_column[c].is_empty() {
                        rng.gen_range(0..signals.len())
                    } else {
                        by_column[c][rng.gen_range(0..by_column[c].len())]
                    }
                };
                // No duplicate fanins: AND(x, x)-style gates are trivially
                // redundant logic.
                if fanin.contains(&idx) {
                    continue;
                }
                fanin.push(idx);
                consumers[idx] += 1;
            }
            if fanin.is_empty() {
                let idx = rng.gen_range(0..signals.len());
                fanin.push(idx);
                consumers[idx] += 1;
            }
            let kind = if fanin.len() == 1 && !matches!(kind, GateKind::Not | GateKind::Buf) {
                GateKind::Not
            } else {
                kind
            };
            let nm = format!("g{gate_no}");
            gate_no += 1;
            let fanin_names: Vec<&str> = fanin.iter().map(|&i| signals[i].as_str()).collect();
            b.add_gate(&nm, kind, &fanin_names).expect("fresh name");
            signals.push(nm);
            column_of.push(col);
            consumers.push(0);
            new_signals.push((signals.len() - 1, col));
        }
        for (i, c) in new_signals {
            by_column[c].push(i);
        }
    }

    // Sinks. Flip-flop D inputs come from their own column (keeping
    // next-state cones local); primary outputs round-robin over columns.
    // Unconsumed gates are drained first within each column.
    let gate_base = config.inputs + config.flip_flops;
    let mut col_unconsumed: Vec<Vec<usize>> = vec![Vec::new(); columns];
    for i in gate_base..signals.len() {
        if consumers[i] == 0 {
            col_unconsumed[column_of[i]].push(i);
        }
    }
    let mut pick_sink = |rng: &mut Prng, consumers: &mut Vec<u32>, col: usize| -> usize {
        let idx = if let Some(i) = col_unconsumed[col].pop() {
            i
        } else {
            // Any late gate of the column, else anywhere.
            let gates_only: Vec<usize> = by_column[col]
                .iter()
                .copied()
                .filter(|&i| i >= gate_base)
                .collect();
            if gates_only.is_empty() {
                rng.gen_range(gate_base..signals.len())
            } else {
                let lo = gates_only.len() / 2;
                gates_only[rng.gen_range(lo..gates_only.len())]
            }
        };
        consumers[idx] += 1;
        idx
    };

    // Outputs must be distinct signals (`OUTPUT` declarations are a set, and
    // the builder dedups). When a pick collides with an already-chosen
    // output, scan deterministically to the next free gate — no extra RNG
    // draw, so collision-free builds are byte-identical to older ones.
    let mut is_output = vec![false; signals.len()];
    for o in 0..config.outputs {
        let mut idx = pick_sink(&mut rng, &mut consumers, o % columns);
        while is_output[idx] {
            idx += 1;
            if idx == signals.len() {
                idx = gate_base;
            }
        }
        is_output[idx] = true;
        b.mark_output(&signals[idx]).expect("declared signal");
    }
    for i in 0..config.flip_flops {
        let col = i * columns / config.flip_flops.max(1);
        let idx = pick_sink(&mut rng, &mut consumers, col);
        let driver = signals[idx].clone();
        b.add_dff(&format!("ff{i}"), &driver).expect("fresh name");
    }

    let netlist = b.build().expect("generator only emits valid structure");
    tvs_lint::debug_assert_netlist_clean(&netlist, "circuits::synthesize");
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::FaultList;

    fn small() -> SynthConfig {
        SynthConfig {
            inputs: 5,
            outputs: 3,
            flip_flops: 10,
            gates: 80,
            seed: 42,
            depth_hint: None,
        }
    }

    #[test]
    fn produces_exact_interface_counts() {
        let n = synthesize("t", &small());
        let s = n.stats();
        assert_eq!((s.inputs, s.outputs, s.dffs), (5, 3, 10));
        assert_eq!(s.combinational_gates, 80);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = tvs_netlist::bench::to_string(&synthesize("t", &small()));
        let b = tvs_netlist::bench::to_string(&synthesize("t", &small()));
        assert_eq!(a, b);
        let other = SynthConfig {
            seed: 43,
            ..small()
        };
        let c = tvs_netlist::bench::to_string(&synthesize("t", &other));
        assert_ne!(a, c);
    }

    #[test]
    fn no_dangling_logic_beyond_tolerance() {
        // Almost every gate should have a consumer, an output marker, or
        // drive a flip-flop; heavy dangling logic would distort fault
        // statistics.
        let n = synthesize(
            "t",
            &SynthConfig {
                inputs: 8,
                outputs: 6,
                flip_flops: 20,
                gates: 300,
                seed: 7,
                depth_hint: None,
            },
        );
        let driven: std::collections::HashSet<_> = n.outputs().iter().copied().collect();
        let dangling = n
            .gate_ids()
            .filter(|&id| {
                n.gate(id).kind().is_combinational()
                    && n.fanout(id).is_empty()
                    && !driven.contains(&id)
            })
            .count();
        assert!(dangling * 20 < 300, "{dangling} dangling gates of 300");
    }

    #[test]
    fn depth_is_nontrivial() {
        let n = synthesize(
            "t",
            &SynthConfig {
                inputs: 6,
                outputs: 4,
                flip_flops: 16,
                gates: 400,
                seed: 9,
                depth_hint: None,
            },
        );
        let view = n.scan_view().unwrap();
        assert!(view.depth() >= 5, "depth {}", view.depth());
    }

    #[test]
    fn most_faults_are_testable() {
        // A healthy generator yields mostly irredundant logic: random
        // patterns alone should detect a decent majority of faults. Averaged
        // over several circuit seeds to damp per-seed redundancy swings.
        use tvs_fault::FaultSim;
        use tvs_logic::BitVec;

        let mut total = 0.0;
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        for seed in seeds {
            let n = synthesize("t", &SynthConfig { seed, ..small() });
            let view = n.scan_view().unwrap();
            let faults = FaultList::collapsed(&n);
            let mut sim = FaultSim::new(&n, &view);
            let mut rng = Prng::seed_from_u64(1);
            let patterns: Vec<BitVec> = (0..256)
                .map(|_| (0..view.input_count()).map(|_| rng.next_bool()).collect())
                .collect();
            let detected = sim.coverage(&patterns, faults.faults());
            let frac = detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64;
            assert!(frac > 0.4, "seed {seed}: random coverage only {frac:.2}");
            total += frac;
        }
        let mean = total / seeds.len() as f64;
        assert!(mean > 0.55, "mean random coverage only {mean:.2}");
    }
}
