//! Hand-written circuits: the paper's Figure 1 example and an s27-class
//! sequential circuit.

use tvs_logic::BitVec;
use tvs_netlist::{GateKind, Netlist, NetlistBuilder};

/// The 3-gate, 3-scan-cell circuit of the DATE 2003 paper's Figure 1.
///
/// Reverse-engineered from the paper's Table 1 (the figure itself is a
/// drawing): `D = AND(a, b)`, `E = OR(b, c)`, `F = AND(D, E)`; cell `a`
/// captures `F`, cell `b` captures `E`, cell `c` captures `D`. The four
/// vectors of [`fig1_vectors`] then produce exactly the paper's fault-free
/// responses `111, 010, 000, 010`, and the fault universe contains exactly
/// one redundant fault, the `E→F` branch stuck-at-1 (`E-F/1`).
///
/// # Examples
///
/// ```
/// let netlist = tvs_circuits::fig1();
/// assert_eq!(netlist.dff_count(), 3);
/// assert_eq!(netlist.input_count(), 0);
/// ```
pub fn fig1() -> Netlist {
    let mut b = NetlistBuilder::new("fig1");
    b.add_dff("a", "F").expect("fresh name");
    b.add_dff("b", "E").expect("fresh name");
    b.add_dff("c", "D").expect("fresh name");
    b.add_gate("D", GateKind::And, &["a", "b"])
        .expect("fresh name");
    b.add_gate("E", GateKind::Or, &["b", "c"])
        .expect("fresh name");
    b.add_gate("F", GateKind::And, &["D", "E"])
        .expect("fresh name");
    b.build().expect("fig1 is structurally valid")
}

/// The paper's four test vectors for [`fig1`], in application order
/// (`110, 001, 100, 010`; cell `a` first).
///
/// Applied with 2-bit stitches after the initial full shift, they form a
/// physically consistent stitched schedule — each vector's retained bit is
/// the leftover of the previous response.
pub fn fig1_vectors() -> Vec<BitVec> {
    ["110", "001", "100", "010"]
        .iter()
        .map(|s| s.chars().map(|c| c == '1').collect())
        .collect()
}

/// An s27-class sequential benchmark: 4 PIs, 1 PO, 3 flip-flops, 10 gates
/// (the classic ISCAS89 s27 topology as commonly distributed).
///
/// Small enough for exhaustive checks, sequential enough to exercise every
/// stitching code path (PIs *and* scan cells, a PO, reconvergent fanout).
///
/// # Examples
///
/// ```
/// let netlist = tvs_circuits::s27();
/// assert_eq!(netlist.input_count(), 4);
/// assert_eq!(netlist.output_count(), 1);
/// assert_eq!(netlist.dff_count(), 3);
/// ```
pub fn s27() -> Netlist {
    let mut b = NetlistBuilder::new("s27");
    for pi in ["G0", "G1", "G2", "G3"] {
        b.add_input(pi).expect("fresh name");
    }
    b.mark_output("G17").expect("declared below");
    b.add_dff("G5", "G10").expect("fresh name");
    b.add_dff("G6", "G11").expect("fresh name");
    b.add_dff("G7", "G13").expect("fresh name");
    b.add_gate("G14", GateKind::Not, &["G0"])
        .expect("fresh name");
    b.add_gate("G17", GateKind::Not, &["G11"])
        .expect("fresh name");
    b.add_gate("G8", GateKind::And, &["G14", "G6"])
        .expect("fresh name");
    b.add_gate("G15", GateKind::Or, &["G12", "G8"])
        .expect("fresh name");
    b.add_gate("G16", GateKind::Or, &["G3", "G8"])
        .expect("fresh name");
    b.add_gate("G9", GateKind::Nand, &["G16", "G15"])
        .expect("fresh name");
    b.add_gate("G10", GateKind::Nor, &["G14", "G11"])
        .expect("fresh name");
    b.add_gate("G11", GateKind::Nor, &["G5", "G9"])
        .expect("fresh name");
    b.add_gate("G12", GateKind::Nor, &["G1", "G7"])
        .expect("fresh name");
    b.add_gate("G13", GateKind::Nor, &["G2", "G12"])
        .expect("fresh name");
    b.build().expect("s27 is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_paper_responses() {
        use tvs_sim::eval_single;
        let n = fig1();
        let view = n.scan_view().unwrap();
        let expect = ["111", "010", "000", "010"];
        for (tv, resp) in fig1_vectors().iter().zip(expect) {
            assert_eq!(eval_single(&n, &view, tv).to_string(), resp);
        }
    }

    #[test]
    fn fig1_vectors_are_stitchable_with_two_bit_shifts() {
        use tvs_sim::eval_single;
        let n = fig1();
        let view = n.scan_view().unwrap();
        let vectors = fig1_vectors();
        for w in vectors.windows(2) {
            let resp = eval_single(&n, &view, &w[0]);
            // retained bit: response cell a (position 0) ends in cell c.
            assert_eq!(w[1].get(2), resp.get(0), "stitch consistency");
        }
    }

    #[test]
    fn s27_shape() {
        let n = s27();
        let s = n.stats();
        assert_eq!((s.inputs, s.outputs, s.dffs), (4, 1, 3));
        assert_eq!(s.combinational_gates, 10);
        assert!(n.scan_view().is_ok());
    }

    #[test]
    fn s27_has_a_healthy_fault_universe() {
        use tvs_fault::FaultList;
        let n = s27();
        let full = FaultList::full(&n);
        let collapsed = FaultList::collapsed(&n);
        assert!(collapsed.len() < full.len());
        assert!(collapsed.len() >= 20, "{}", collapsed.len());
    }
}
