//! Benchmark circuits for the TVS DFT toolkit.
//!
//! Three sources of circuits:
//!
//! * [`fig1`] — the exact 3-gate, 3-scan-cell circuit of the DATE 2003
//!   paper's Figure 1, together with the paper's four test vectors, used to
//!   replay the worked example (Table 1);
//! * [`s27`] — a small ISCAS89-class sequential circuit for fast tests;
//! * [`synthesize`] / [`Profile`] — a deterministic, seeded generator of
//!   ISCAS89-*calibrated* synthetic circuits. The genuine ISCAS89 netlists
//!   are not redistributable in this offline environment; each profile
//!   reproduces the published PI/PO/FF counts (the values in the paper's
//!   tables) and a comparable gate count, depth and fanout distribution, so
//!   that the structural statistics the compression ratios depend on are
//!   preserved. See DESIGN.md §2 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod example;
mod profiles;
mod synth;

pub use example::{fig1, fig1_vectors, s27};
pub use profiles::{all_profiles, profile, profiles_table2, profiles_table5, Profile};
pub use synth::{synthesize, SynthConfig};
