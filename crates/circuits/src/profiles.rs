//! ISCAS89-calibrated circuit profiles.
//!
//! The genuine ISCAS89 netlists are not redistributable in this offline
//! environment; each [`Profile`] records the published interface counts
//! (matching the I/O and scan-length columns of the paper's Tables 2 and 5)
//! and a comparable combinational gate count, and
//! [`Profile::build`] deterministically synthesizes a stand-in circuit with
//! that shape. See DESIGN.md §2 for why this preserves the experiments'
//! structure.

use tvs_netlist::Netlist;

use crate::{synthesize, SynthConfig};

/// The interface shape of one benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Benchmark name (e.g. `"s444"`).
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops (scan length) — the paper's `scan#` column.
    pub flip_flops: usize,
    /// Combinational gates (published ISCAS89 counts).
    pub gates: usize,
    /// Seed for the deterministic stand-in generator.
    pub seed: u64,
    /// Logic-depth hint passed to the generator (`None` = derived).
    pub depth: Option<usize>,
}

impl Profile {
    /// Synthesizes the stand-in netlist at full published size.
    pub fn build(&self) -> Netlist {
        self.build_scaled(1.0)
    }

    /// Synthesizes the stand-in with the gate count scaled by `factor`
    /// (interface counts are preserved; useful for quick CI benches on the
    /// 20k-gate profiles).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn build_scaled(&self, factor: f64) -> Netlist {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let gates =
            ((self.gates as f64 * factor).round() as usize).max(self.flip_flops + self.outputs);
        synthesize(
            self.name,
            &SynthConfig {
                inputs: self.inputs,
                outputs: self.outputs,
                flip_flops: self.flip_flops,
                gates,
                seed: self.seed,
                depth_hint: self.depth,
            },
        )
    }
}

/// All known profiles, keyed by the names the paper's tables use.
const PROFILES: &[Profile] = &[
    Profile {
        name: "s444",
        inputs: 3,
        outputs: 6,
        flip_flops: 21,
        gates: 181,
        seed: 0x444,
        depth: None,
    },
    Profile {
        name: "s526",
        inputs: 3,
        outputs: 6,
        flip_flops: 21,
        gates: 193,
        seed: 0x526,
        depth: None,
    },
    Profile {
        name: "s641",
        inputs: 35,
        outputs: 24,
        flip_flops: 19,
        gates: 379,
        seed: 0x641,
        depth: None,
    },
    Profile {
        name: "s953",
        inputs: 16,
        outputs: 23,
        flip_flops: 29,
        gates: 395,
        seed: 0x953,
        depth: None,
    },
    Profile {
        name: "s1196",
        inputs: 14,
        outputs: 14,
        flip_flops: 18,
        gates: 529,
        seed: 0x1196,
        depth: None,
    },
    Profile {
        name: "s1423",
        inputs: 17,
        outputs: 5,
        flip_flops: 74,
        gates: 657,
        seed: 0x1423,
        depth: None,
    },
    Profile {
        name: "s5378",
        inputs: 35,
        outputs: 49,
        flip_flops: 179,
        gates: 2779,
        seed: 0x5378,
        depth: None,
    },
    Profile {
        name: "s9234",
        inputs: 19,
        outputs: 22,
        flip_flops: 228,
        gates: 5597,
        seed: 0x9234,
        depth: None,
    },
    Profile {
        name: "s13207",
        inputs: 31,
        outputs: 121,
        flip_flops: 669,
        gates: 7951,
        seed: 0x13207,
        depth: None,
    },
    Profile {
        name: "s15850",
        inputs: 14,
        outputs: 87,
        flip_flops: 597,
        gates: 9772,
        seed: 0x15850,
        depth: None,
    },
    Profile {
        name: "s35932",
        inputs: 35,
        outputs: 320,
        flip_flops: 1728,
        gates: 16065,
        seed: 0x35932,
        depth: Some(8),
    },
    Profile {
        name: "s38417",
        inputs: 28,
        outputs: 106,
        flip_flops: 1636,
        gates: 22179,
        seed: 0x38417,
        depth: None,
    },
    Profile {
        name: "s38584",
        inputs: 12,
        outputs: 278,
        flip_flops: 1452,
        gates: 19253,
        seed: 0x38584,
        depth: None,
    },
];

/// Looks a profile up by benchmark name.
///
/// # Examples
///
/// ```
/// let p = tvs_circuits::profile("s444").unwrap();
/// assert_eq!(p.flip_flops, 21);
/// assert!(tvs_circuits::profile("s9999").is_none());
/// ```
pub fn profile(name: &str) -> Option<Profile> {
    PROFILES.iter().copied().find(|p| p.name == name)
}

/// Every built-in profile, in catalog order.
///
/// # Examples
///
/// ```
/// assert!(tvs_circuits::all_profiles().len() >= 13);
/// ```
pub fn all_profiles() -> Vec<Profile> {
    PROFILES.to_vec()
}

/// The eight circuits of the paper's Tables 2–4, in table order.
pub fn profiles_table2() -> Vec<Profile> {
    [
        "s444", "s526", "s641", "s953", "s1196", "s1423", "s5378", "s9234",
    ]
    .iter()
    .map(|n| profile(n).expect("table-2 profile exists"))
    .collect()
}

/// The seven large circuits of the paper's Table 5, in table order.
pub fn profiles_table5() -> Vec<Profile> {
    [
        "s5378", "s9234", "s13207", "s15850", "s35932", "s38417", "s38584",
    ]
    .iter()
    .map(|n| profile(n).expect("table-5 profile exists"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_paper_interface_columns() {
        // Table 2's `shift x/L` column fixes the scan lengths.
        for (name, scan) in [
            ("s444", 21),
            ("s526", 21),
            ("s641", 19),
            ("s953", 29),
            ("s1196", 18),
            ("s1423", 74),
            ("s5378", 179),
            ("s9234", 228),
        ] {
            assert_eq!(profile(name).unwrap().flip_flops, scan, "{name}");
        }
        // Table 5's I/O column.
        for (name, i, o) in [
            ("s5378", 35, 49),
            ("s9234", 19, 22),
            ("s13207", 31, 121),
            ("s15850", 14, 87),
            ("s35932", 35, 320),
            ("s38417", 28, 106),
            ("s38584", 12, 278),
        ] {
            let p = profile(name).unwrap();
            assert_eq!((p.inputs, p.outputs), (i, o), "{name}");
        }
    }

    #[test]
    fn build_produces_requested_shape() {
        let p = profile("s444").unwrap();
        let n = p.build();
        let s = n.stats();
        assert_eq!((s.inputs, s.outputs, s.dffs), (3, 6, 21));
        assert_eq!(s.combinational_gates, 181);
    }

    #[test]
    fn scaled_build_shrinks_logic_only() {
        let p = profile("s5378").unwrap();
        let n = p.build_scaled(0.1);
        let s = n.stats();
        assert_eq!((s.inputs, s.outputs, s.dffs), (35, 49, 179));
        assert!(s.combinational_gates < 500);
    }

    #[test]
    fn builds_are_deterministic() {
        let p = profile("s526").unwrap();
        let a = tvs_netlist::bench::to_string(&p.build());
        let b = tvs_netlist::bench::to_string(&p.build());
        assert_eq!(a, b);
    }
}
