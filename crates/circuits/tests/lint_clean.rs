//! Every built-in circuit must pass the IR analyzer's deny-level rules.
//!
//! The synthetic generator is allowed a small amount of dead logic (warn
//! IR006 — see `synth.rs`'s dangling-tolerance test), but structural
//! violations (undriven/double-driven nets, cycles, chain breaks) would
//! silently corrupt fault statistics, so they are locked out here.

use tvs_lint::{analyze_netlist, Severity};

#[test]
fn handwritten_examples_are_deny_clean() {
    for netlist in [tvs_circuits::fig1(), tvs_circuits::s27()] {
        let denies: Vec<_> = analyze_netlist(&netlist)
            .into_iter()
            .filter(|d| d.severity == Severity::Deny)
            .collect();
        assert!(denies.is_empty(), "{}: {denies:?}", netlist.name());
    }
}

#[test]
fn all_profiles_are_deny_clean_with_bounded_dead_logic() {
    for profile in tvs_circuits::all_profiles() {
        // Scaled-down builds keep the debug-mode test fast while still
        // exercising every profile's generator parameters.
        let netlist = profile.build_scaled(0.2);
        let diags = analyze_netlist(&netlist);
        let denies: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .collect();
        assert!(denies.is_empty(), "{}: {denies:?}", profile.name);
        let dead = diags.iter().filter(|d| d.code == "IR006").count();
        assert!(
            dead * 20 < netlist.gate_count().max(1),
            "{}: {dead} dead gates out of {} is beyond tolerance",
            profile.name,
            netlist.gate_count()
        );
    }
}
