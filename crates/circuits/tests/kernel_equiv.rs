//! Kernel equivalence: the event-driven incremental sweep must be
//! bit-identical to the plain full sweep for *any* stimulus/injection
//! combination. For every built-in profile we seed a baseline, then drive
//! 256 random deltas — small stimulus flips, injection churn, and the
//! occasional wholesale re-randomization that forces the full-sweep
//! fallback — through an incremental simulator and an independent
//! reference simulator, comparing every output word after each sweep.

use tvs_circuits::all_profiles;
use tvs_fault::{Fault, FaultList};
use tvs_logic::Prng;
use tvs_sim::{Injection, ParallelSim};

/// Picks up to `max` random faults and realizes them as injections over
/// random slot masks. Reuses the collapsed fault list so every injection
/// names a real gate/pin pair.
fn random_injections(rng: &mut Prng, faults: &[Fault], max: usize) -> Vec<Injection> {
    let count = rng.gen_range(0..max + 1);
    (0..count)
        .map(|_| {
            let f = &faults[rng.gen_range(0..faults.len())];
            f.injection(rng.next_u64())
        })
        .collect()
}

#[test]
fn incremental_sweeps_match_full_sweeps_on_every_profile() {
    let mut rng = Prng::seed_from_u64(0x0517_C4E9);
    for profile in all_profiles() {
        let netlist = profile.build();
        let view = netlist.scan_view().expect("profiles carry scan chains");
        let list = FaultList::collapsed(&netlist);
        let faults = list.faults();

        let mut incremental = ParallelSim::new(&netlist, &view);
        let mut reference = ParallelSim::new(&netlist, &view);

        let mut words: Vec<u64> = (0..view.input_count()).map(|_| rng.next_u64()).collect();
        let baseline_inj = random_injections(&mut rng, faults, 2);
        incremental.seed_baseline(&words, &baseline_inj);

        for step in 0..256 {
            // Stimulus delta: usually a few flipped bits in a few words
            // (the event path), every 16th step a full re-randomization
            // (the cone-bound fallback path).
            if step % 16 == 15 {
                for w in words.iter_mut() {
                    *w = rng.next_u64();
                }
            } else {
                for _ in 0..rng.gen_range(1..4) {
                    let i = rng.gen_range(0..words.len());
                    words[i] ^= 1u64 << rng.gen_range(0..64);
                }
            }
            let injections = random_injections(&mut rng, faults, 3);

            incremental.eval_incremental(&words, &injections);
            reference.eval(&words, &injections);

            for o in 0..view.output_count() {
                assert_eq!(
                    incremental.output_word(o),
                    reference.output_word(o),
                    "{}: output {o} diverged at delta {step}",
                    profile.name
                );
            }
        }
    }
}

#[test]
fn reseeding_after_incremental_sweeps_stays_equivalent() {
    // A session-style workload: alternate baseline re-seeds with bursts of
    // incremental sweeps, as the stitch engine does once per cycle.
    let mut rng = Prng::seed_from_u64(0xBA5E);
    let profile = tvs_circuits::profile("s953").expect("built-in profile");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("scan chain");
    let list = FaultList::collapsed(&netlist);
    let faults = list.faults();

    let mut incremental = ParallelSim::new(&netlist, &view);
    let mut reference = ParallelSim::new(&netlist, &view);

    for _ in 0..8 {
        let words: Vec<u64> = (0..view.input_count()).map(|_| rng.next_u64()).collect();
        incremental.seed_baseline(&words, &[]);
        for _ in 0..32 {
            let injections = random_injections(&mut rng, faults, 3);
            incremental.eval_incremental(&words, &injections);
            reference.eval(&words, &injections);
            for o in 0..view.output_count() {
                assert_eq!(incremental.output_word(o), reference.output_word(o));
            }
        }
    }
}
