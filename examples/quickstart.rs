//! Quickstart: compress the test set of a small sequential circuit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tvs::circuits;
use tvs::stitch::{StitchConfig, StitchEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An s27-class circuit: 4 PIs, 1 PO, 3 scan cells.
    let netlist = circuits::s27();
    println!("circuit: {netlist}");

    let engine = StitchEngine::new(&netlist)?;
    let report = engine.run(&StitchConfig::default())?;

    println!("stitched vectors (TV): {}", report.metrics.stitched_vectors);
    println!("fallback vectors (ex): {}", report.metrics.extra_vectors);
    println!(
        "baseline vectors (aTV): {}",
        report.metrics.baseline_vectors
    );
    println!(
        "tester memory ratio m = {:.2}, test time ratio t = {:.2}",
        report.metrics.memory_ratio, report.metrics.time_ratio
    );
    println!("fault coverage: {:.4}", report.metrics.fault_coverage);
    println!(
        "stitched costs: {}  (baseline: {})",
        report.metrics.stitched_costs, report.metrics.baseline_costs
    );
    Ok(())
}
