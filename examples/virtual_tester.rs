//! From compressed schedule to defect screening: generate a stitched test
//! program, export it in `.tvp` form, execute it on the virtual ATE against
//! good and defective parts, and diagnose a failing part from its syndrome.
//!
//! ```sh
//! cargo run --release --example virtual_tester
//! ```

use tvs::ate::{diagnose, Dut, TestProgram, VirtualAte};
use tvs::fault::{Fault, FaultList, StuckAt};
use tvs::stitch::{StitchConfig, StitchEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = tvs::circuits::s27();
    let config = StitchConfig::default();
    let engine = StitchEngine::new(&netlist)?;
    let report = engine.run(&config)?;
    let program = TestProgram::from_report(&netlist, &report, &config);

    println!("circuit: {netlist}");
    println!(
        "program: {} cycles, {} shift clocks (conventional would need {})",
        program.cycles.len(),
        program.shift_cycles(),
        report.metrics.baseline_costs.shift_cycles,
    );
    println!("\nfirst lines of the .tvp export:");
    for line in program.to_text().lines().take(8) {
        println!("  {line}");
    }

    let view = netlist.scan_view()?;
    let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);
    println!("\ngood part: {:?}", VirtualAte::execute(&program, &mut dut));

    // Manufacture a defective part.
    let defect = Fault::stem(netlist.find("G11").expect("known net"), StuckAt::One);
    dut.inject(defect);
    let outcome = VirtualAte::execute(&program, &mut dut);
    println!(
        "defective part ({}): {outcome:?}",
        defect.display_in(&netlist)
    );

    // Diagnose it from the full failure syndrome.
    let observed = VirtualAte::failure_log(&program, &mut dut);
    println!("syndrome: {} failing observations", observed.len());
    let candidates = FaultList::collapsed(&netlist);
    let ranked = diagnose(&netlist, &program, &observed, candidates.faults());
    println!("top diagnosis candidates:");
    for d in ranked.iter().take(3) {
        println!("  {:8} score {:.2}", d.fault.display_in(&netlist), d.score);
    }
    Ok(())
}
