//! A tour of the implementation choices of the paper's §6 on one circuit:
//! shift policies, vector-selection strategies and XOR observability
//! schemes, with the resulting `m`/`t` ratios side by side.
//!
//! ```sh
//! cargo run --release --example strategy_tour
//! ```

use tvs::circuits;
use tvs::scan::{CaptureTransform, ObserveTransform};
use tvs::stitch::{ShiftPolicy, StitchConfig, StitchEngine, ALL_STRATEGIES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size stand-in (s444-calibrated: 3 PIs, 6 POs, 21 scan cells).
    let profile = circuits::profile("s444").expect("known profile");
    let netlist = profile.build();
    println!("circuit: {netlist}\n");
    let engine = StitchEngine::new(&netlist)?;

    println!("-- shift policy (paper §6.1) --");
    for (label, policy) in [
        ("fixed k=5 (3/8 info)", ShiftPolicy::Fixed(5)),
        ("fixed k=13 (5/8 info)", ShiftPolicy::Fixed(13)),
        ("variable (default)", ShiftPolicy::default()),
    ] {
        let report = engine.run(&StitchConfig {
            policy,
            ..StitchConfig::default()
        })?;
        println!("  {label:24} {}", report.metrics);
    }

    println!("\n-- target ordering strategy (paper §6.3 and beyond) --");
    for strategy in ALL_STRATEGIES {
        let report = engine.run(&StitchConfig {
            strategy,
            ..StitchConfig::default()
        })?;
        println!("  {:24} {}", strategy.name(), report.metrics);
    }

    println!("\n-- hidden-fault observability (paper §6.2) --");
    let schemes: [(&str, CaptureTransform, ObserveTransform); 3] = [
        (
            "plain (NXOR)",
            CaptureTransform::Plain,
            ObserveTransform::Direct,
        ),
        (
            "vertical XOR",
            CaptureTransform::VerticalXor,
            ObserveTransform::Direct,
        ),
        (
            "horizontal XOR (3)",
            CaptureTransform::Plain,
            ObserveTransform::HorizontalXor(3),
        ),
    ];
    for (label, capture, observe) in schemes {
        let report = engine.run(&StitchConfig {
            capture,
            observe,
            ..StitchConfig::default()
        })?;
        let (entered, converted, erased) = report.hidden_transitions;
        println!(
            "  {label:24} {}  hidden: {entered} in / {converted} caught / {erased} erased",
            report.metrics
        );
    }
    println!("\n(the XOR schemes preserve hidden-fault effects, raising the conversion rate —");
    println!(" exactly the paper's §6.2 argument)");
    Ok(())
}
