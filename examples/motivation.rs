//! The paper's §3 motivation example, replayed step by step: the Figure 1
//! circuit, its four stitched test vectors, and the hidden-fault story of
//! Table 1.
//!
//! ```sh
//! cargo run --release --example motivation
//! ```

use tvs::circuits;
use tvs::scan::CostModel;
use tvs::stitch::{StitchConfig, StitchEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = circuits::fig1();
    println!("The Figure 1 circuit: D = AND(a,b), E = OR(b,c), F = AND(D,E);");
    println!("scan cells a <- F, b <- E, c <- D. No PIs, no POs.\n");

    let engine = StitchEngine::new(&netlist)?;
    let vectors = circuits::fig1_vectors();
    let trace = engine.replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())?;

    println!("Stitched application (3 bits, then 2 per cycle):");
    for (i, cycle) in trace.cycles.iter().enumerate() {
        println!(
            "  cycle {}: apply {} -> response {}",
            i + 1,
            cycle.vector,
            cycle.response
        );
    }

    // The famous hidden fault: F stuck-at-0.
    let f0 = trace
        .rows
        .iter()
        .find(|r| r.fault.display_in(&netlist) == "F/0")
        .expect("F/0 is tracked");
    println!("\nThe hidden fault F/0:");
    println!(
        "  cycle 1: response {} differs from {} only in cell a — not shifted out, HIDDEN",
        f0.entries[0].response, trace.cycles[0].response
    );
    println!(
        "  cycle 2: its mutated vector {} (intended {}) produces {} vs {} — CAUGHT",
        f0.entries[1].vector,
        trace.cycles[1].vector,
        f0.entries[1].response,
        trace.cycles[1].response
    );
    assert_eq!(f0.caught_at, Some(1));

    let caught = trace.rows.iter().filter(|r| r.caught_at.is_some()).count();
    println!(
        "\n{} of {} collapsed faults caught; only the redundant E-F/1 survives.",
        caught,
        trace.rows.len()
    );

    // The paper's cost arithmetic.
    let model = CostModel {
        scan_len: 3,
        pi_count: 0,
        po_count: 0,
    };
    let full = model.full_costs(4);
    let stitched = model.stitched_costs(&[3, 2, 2, 2], 2, 0);
    println!("\nCosts: conventional {full}; stitched {stitched}.");
    let (m, t) = stitched.ratios_vs(&full);
    println!("=> m = {m:.2} (paper: 17/24), t = {t:.2} (paper: 11/15).");
    Ok(())
}
