//! ISCAS89 `.bench` interoperability: parse a netlist from text, inspect
//! it, export a synthesized benchmark, and re-import it.
//!
//! ```sh
//! cargo run --release --example bench_roundtrip
//! ```

use tvs::circuits::{synthesize, SynthConfig};
use tvs::fault::FaultList;
use tvs::netlist::bench;

const EXAMPLE: &str = "
# a tiny sequential fragment in .bench format
INPUT(clk_en)
INPUT(d_in)
OUTPUT(q_out)
state = DFF(next)
next  = NAND(clk_en, d_in)
q_out = NOT(state)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse.
    let parsed = bench::parse("fragment", EXAMPLE)?;
    println!("parsed: {parsed}");
    println!("stats:  {}", parsed.stats());
    let view = parsed.scan_view()?;
    println!(
        "scan view: {} combinational inputs -> {} outputs, depth {}",
        view.input_count(),
        view.output_count(),
        view.depth()
    );

    // Generate a calibrated benchmark and export it.
    let synth = synthesize(
        "demo600",
        &SynthConfig {
            inputs: 8,
            outputs: 6,
            flip_flops: 32,
            gates: 600,
            seed: 2003,
            depth_hint: None,
        },
    );
    let text = bench::to_string(&synth);
    println!(
        "\nsynthesized {} and serialized to {} bytes of .bench",
        synth,
        text.len()
    );

    // Round-trip.
    let back = bench::parse("demo600", &text)?;
    assert_eq!(back.gate_count(), synth.gate_count());
    assert_eq!(back.dff_count(), synth.dff_count());
    println!("re-imported identically: {back}");

    let faults = FaultList::collapsed(&back);
    println!(
        "collapsed stuck-at fault list: {} faults (universe {})",
        faults.len(),
        FaultList::full(&back).len()
    );
    println!("\nfirst lines of the exported file:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
