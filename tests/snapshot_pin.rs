//! Snapshot-format pin: a checked-in checkpoint must keep parsing and
//! resuming bit-identically after any refactor of the stitch pipeline or
//! the simulation kernel.
//!
//! `tests/data/s444_pin.tvsnap` was captured with
//! `tvs run s444.bench --threads 1 --checkpoint-every 3` at the default
//! configuration (format v2, which carries the strategy cursor — the
//! original v1 capture predates the strategy layer and was regenerated
//! when v1 became foreign); `tests/data/s444_pin.bench` is the matching
//! circuit. The reference run printed
//! `TV=39 ex=19 aTV=39 m=0.90 t=0.80 coverage=1.0000` — unchanged across
//! the regeneration, pinning that the default `most` strategy through the
//! trait layer is bit-identical to the pre-refactor closed enum.

use tvs::netlist::bench;
use tvs::stitch::{RunOptions, Snapshot, StitchConfig, StitchEngine, StitchReport, Termination};

fn pinned_netlist() -> tvs::netlist::Netlist {
    let text = include_str!("data/s444_pin.bench");
    bench::parse("s444", text).expect("pinned bench parses")
}

fn pinned_snapshot() -> Snapshot {
    let text = include_str!("data/s444_pin.tvsnap");
    Snapshot::parse(text).expect("pinned snapshot parses")
}

fn run_resumed(netlist: &tvs::netlist::Netlist, threads: usize) -> StitchReport {
    let cfg = StitchConfig {
        threads,
        ..StitchConfig::default()
    };
    StitchEngine::new(netlist)
        .expect("engine")
        .run_with(
            &cfg,
            RunOptions {
                resume: Some(pinned_snapshot()),
                checkpoint_every: 0,
                on_checkpoint: None,
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect("resume from the pinned snapshot")
}

#[test]
fn pinned_snapshot_parses_and_describes_the_pinned_circuit() {
    let snap = pinned_snapshot();
    let netlist = pinned_netlist();
    assert_eq!(snap.circuit, "s444");
    assert_eq!(snap.gate_count, netlist.gate_count());
    assert_eq!(snap.scan_len, netlist.dff_count());
    // Canonical serialization: emitting the parsed snapshot reproduces it.
    let reparsed = Snapshot::parse(&snap.to_text()).expect("round trip");
    assert_eq!(snap, reparsed);
}

#[test]
fn pinned_snapshot_resumes_bit_identically_to_an_uninterrupted_run() {
    let netlist = pinned_netlist();
    let full = StitchEngine::new(&netlist)
        .expect("engine")
        .run(&StitchConfig::default())
        .expect("uninterrupted run");
    assert_eq!(full.termination, Termination::Complete);
    // The pre-refactor reference numbers, pinned to the byte.
    assert_eq!(
        full.metrics.to_string(),
        "TV=39 ex=19 aTV=39 m=0.90 t=0.80 coverage=1.0000"
    );

    for threads in [1, 2, 8] {
        let resumed = run_resumed(&netlist, threads);
        assert_eq!(
            full, resumed,
            "resume at {threads} threads diverged from the uninterrupted run"
        );
    }
}
