//! End-to-end reproduction of the paper's Table 1 through the public API.

use tvs::circuits::{fig1, fig1_vectors};
use tvs::stitch::{StitchConfig, StitchEngine};

fn trace() -> (tvs::netlist::Netlist, tvs::stitch::ReplayTrace) {
    let netlist = fig1();
    let engine = StitchEngine::new(&netlist).expect("fig1 has a scan chain");
    let trace = engine
        .replay(&fig1_vectors(), &[3, 2, 2, 2], 2, &StitchConfig::default())
        .expect("the paper's schedule is consistent");
    (netlist, trace)
}

#[test]
fn fault_free_row_matches_paper() {
    let (_, trace) = trace();
    let tvs: Vec<String> = trace.cycles.iter().map(|c| c.vector.to_string()).collect();
    let rps: Vec<String> = trace
        .cycles
        .iter()
        .map(|c| c.response.to_string())
        .collect();
    assert_eq!(tvs, ["110", "001", "100", "010"]);
    assert_eq!(rps, ["111", "010", "000", "010"]);
}

#[test]
fn only_the_redundant_fault_survives() {
    let (netlist, trace) = trace();
    let uncaught: Vec<String> = trace
        .rows
        .iter()
        .filter(|r| r.caught_at.is_none())
        .map(|r| r.fault.display_in(&netlist))
        .collect();
    assert_eq!(uncaught, ["E-F/1"]);
}

#[test]
fn f0_hides_then_surfaces_via_mutated_vector() {
    let (netlist, trace) = trace();
    let row = trace
        .rows
        .iter()
        .find(|r| r.fault.display_in(&netlist) == "F/0")
        .expect("F/0 tracked");
    // Cycle 1: response 011 vs 111 — differs only in cell a (retained).
    assert_eq!(row.entries[0].response.to_string(), "011");
    // Cycle 2: the mutated vector 000 (intended 001) produces 000 vs 010.
    assert_eq!(row.entries[1].vector.to_string(), "000");
    assert_eq!(row.entries[1].response.to_string(), "000");
    assert_eq!(row.caught_at, Some(1));
}

#[test]
fn f1_class_faults_mutate_the_third_vector() {
    // Paper: F/1 and D-F/1 become hidden in cycle 2 and mutate the third
    // test vector to 101, whose faulty response 110 differs from 000.
    let (netlist, trace) = trace();
    let row = trace
        .rows
        .iter()
        .find(|r| r.fault.display_in(&netlist) == "F/1")
        .expect("F/1 tracked");
    assert_eq!(row.entries[2].vector.to_string(), "101");
    assert_eq!(row.entries[2].response.to_string(), "110");
    assert_eq!(row.caught_at, Some(2));
}

#[test]
fn a_stuck_at_one_is_caught_by_the_final_flush() {
    // Paper: A/1 is only excited by the fourth vector 010; its faulty
    // response 111 differs from 010 in cells the closing flush exposes.
    let (netlist, trace) = trace();
    let row = trace
        .rows
        .iter()
        .find(|r| r.fault.display_in(&netlist) == "a/1")
        .expect("a/1 tracked");
    assert_eq!(row.entries.len(), 4, "tracked through all four cycles");
    assert_eq!(row.entries[3].response.to_string(), "111");
    assert_eq!(row.caught_at, Some(3));
}

#[test]
fn generated_run_also_reaches_full_coverage() {
    let netlist = fig1();
    let engine = StitchEngine::new(&netlist).expect("fig1 has a scan chain");
    let report = engine.run(&StitchConfig::default()).expect("run succeeds");
    assert!(report.metrics.fault_coverage >= 1.0 - 1e-9);
    assert_eq!(report.redundant.len(), 1);
}
