//! Strategy-layer checkpoint contracts: a snapshot carries the strategy's
//! cursor state verbatim, a checkpoint taken under one strategy refuses to
//! resume under another (config-fingerprint mismatch → exit 5 at the CLI),
//! and every new strategy round-trips its cursor bit-identically at 1 and
//! 4 threads.

use std::process::Command;

use tvs::circuits;
use tvs::netlist::bench;
use tvs::stitch::{
    RunOptions, Snapshot, SnapshotError, StitchConfig, StitchEngine, StitchError, StitchReport,
    StrategyId,
};

/// The strategies introduced by the strategy-layer refactor.
const NEW_STRATEGIES: [StrategyId; 3] = [
    StrategyId::Adi,
    StrategyId::SchemeSearch,
    StrategyId::Buckets,
];

fn netlist() -> tvs::netlist::Netlist {
    circuits::profile("s444").expect("s444 profile").build()
}

fn config(strategy: StrategyId, threads: usize) -> StitchConfig {
    StitchConfig {
        strategy,
        seed: 17,
        threads,
        ..StitchConfig::default()
    }
}

fn checkpointed_run(
    netlist: &tvs::netlist::Netlist,
    cfg: &StitchConfig,
    every: usize,
) -> (StitchReport, Vec<Snapshot>) {
    let engine = StitchEngine::new(netlist).expect("engine");
    let mut snaps: Vec<Snapshot> = Vec::new();
    let mut keep = |snap: Snapshot| snaps.push(snap);
    let report = engine
        .run_with(
            cfg,
            RunOptions {
                resume: None,
                checkpoint_every: every,
                on_checkpoint: Some(&mut keep),
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect("checkpointed run");
    (report, snaps)
}

fn resume_run(
    netlist: &tvs::netlist::Netlist,
    cfg: &StitchConfig,
    snapshot: Snapshot,
) -> Result<StitchReport, StitchError> {
    StitchEngine::new(netlist).expect("engine").run_with(
        cfg,
        RunOptions {
            resume: Some(snapshot),
            checkpoint_every: 0,
            on_checkpoint: None,
            on_progress: None,
            prescreen_plan: None,
            on_prescreen: None,
        },
    )
}

#[test]
fn each_new_strategy_round_trips_its_cursor_at_1_and_4_threads() {
    let netlist = netlist();
    for strategy in NEW_STRATEGIES {
        for threads in [1, 4] {
            let cfg = config(strategy, threads);
            let (full, snaps) = checkpointed_run(&netlist, &cfg, 4);
            assert!(
                !snaps.is_empty(),
                "{strategy:?}@{threads}: run long enough to checkpoint"
            );
            for snap in &snaps {
                // The cursor survives the text format bit-for-bit.
                let text = snap.to_text();
                let parsed = Snapshot::parse(&text).expect("round trip");
                assert_eq!(
                    snap.strategy_cursor, parsed.strategy_cursor,
                    "{strategy:?}@{threads}: cursor changed across serialization"
                );
                assert_eq!(snap, &parsed);
                assert_eq!(text, parsed.to_text(), "canonical serialization");
            }
            // Resuming mid-flight reproduces the uninterrupted run exactly.
            let resumed =
                resume_run(&netlist, &cfg, snaps[0].clone()).expect("resume under same strategy");
            assert_eq!(
                full, resumed,
                "{strategy:?}@{threads}: resume diverged from the uninterrupted run"
            );
        }
    }
}

#[test]
fn new_strategy_cursors_are_thread_count_invariant() {
    let netlist = netlist();
    for strategy in NEW_STRATEGIES {
        let (_, one) = checkpointed_run(&netlist, &config(strategy, 1), 4);
        let (_, four) = checkpointed_run(&netlist, &config(strategy, 4), 4);
        let ones: Vec<&[u64]> = one.iter().map(|s| s.strategy_cursor.as_slice()).collect();
        let fours: Vec<&[u64]> = four.iter().map(|s| s.strategy_cursor.as_slice()).collect();
        assert_eq!(
            ones, fours,
            "{strategy:?}: cursor stream differs between 1 and 4 threads"
        );
    }
}

#[test]
fn resume_under_a_different_strategy_is_refused_in_process() {
    let netlist = netlist();
    for (taken, resumed_as) in [
        (StrategyId::Adi, StrategyId::MostFaults),
        (StrategyId::SchemeSearch, StrategyId::Adi),
        (StrategyId::Buckets, StrategyId::SchemeSearch),
        (StrategyId::MostFaults, StrategyId::Buckets),
    ] {
        let (_, snaps) = checkpointed_run(&netlist, &config(taken, 1), 4);
        let err = resume_run(&netlist, &config(resumed_as, 1), snaps[0].clone())
            .expect_err("strategies differ; resume must refuse");
        assert!(
            matches!(
                err,
                StitchError::Snapshot(SnapshotError::Mismatch(ref m)) if m.contains("config")
            ),
            "{taken:?}->{resumed_as:?}: got {err:?}"
        );
    }
}

#[test]
fn cli_resume_under_a_different_strategy_exits_5() {
    let dir = std::env::temp_dir().join(format!("tvs-strategy-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let circuit = dir.join("s444.bench");
    let snap = dir.join("s444.tvsnap");
    std::fs::write(&circuit, bench::to_string(&netlist())).expect("write circuit");

    let tvs = env!("CARGO_BIN_EXE_tvs");
    let checkpoint = Command::new(tvs)
        .args([
            "run",
            circuit.to_str().expect("utf8 path"),
            "--strategy",
            "adi",
            "--threads",
            "1",
            "--checkpoint-every",
            "4",
            "--checkpoint",
            snap.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn tvs run");
    assert!(
        checkpoint.status.success(),
        "checkpoint run failed: {}",
        String::from_utf8_lossy(&checkpoint.stderr)
    );
    assert!(snap.exists(), "checkpoint file written");

    let resume = Command::new(tvs)
        .args([
            "run",
            circuit.to_str().expect("utf8 path"),
            "--strategy",
            "buckets",
            "--threads",
            "1",
            "--resume",
            snap.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn tvs run --resume");
    assert_eq!(
        resume.status.code(),
        Some(5),
        "mismatched strategy must exit 5 (snapshot mismatch); stderr: {}",
        String::from_utf8_lossy(&resume.stderr)
    );
    let stderr = String::from_utf8_lossy(&resume.stderr);
    assert!(
        stderr.contains("fingerprint"),
        "stderr names the fingerprint mismatch: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
