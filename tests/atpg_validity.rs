//! Cross-crate validity checks of the ATPG substrate: every cube PODEM
//! emits must detect its target under fault simulation, for any completion
//! of the don't-cares; `Untestable` verdicts must survive random search.

use tvs::atpg::{Podem, PodemConfig, PodemResult};
use tvs::circuits::{synthesize, SynthConfig};
use tvs::fault::{FaultList, FaultSim};
use tvs::logic::{BitVec, Cube, Logic, Prng};

#[test]
fn podem_cubes_detect_their_targets_for_any_fill() {
    for seed in 0..6u64 {
        let netlist = synthesize(
            "validity",
            &SynthConfig {
                inputs: 5,
                outputs: 3,
                flip_flops: 12,
                gates: 90,
                seed,
                depth_hint: None,
            },
        );
        let view = netlist.scan_view().expect("valid");
        let faults = FaultList::collapsed(&netlist);
        let mut podem = Podem::new(&netlist, &view);
        let mut fsim = FaultSim::new(&netlist, &view);
        let mut rng = Prng::seed_from_u64(seed ^ 0xABCD);
        let free = Cube::unspecified(view.input_count());
        for &fault in faults.faults() {
            if let PodemResult::Test(cube) = podem.generate(fault, &free) {
                for _ in 0..4 {
                    let bits = cube.random_fill(&mut rng);
                    assert!(
                        fsim.detect(&bits, &[fault])[0],
                        "seed {seed}: cube {cube} misses {}",
                        fault.display_in(&netlist)
                    );
                }
            }
        }
    }
}

#[test]
fn untestable_verdicts_survive_random_search() {
    let netlist = synthesize(
        "redundancy",
        &SynthConfig {
            inputs: 4,
            outputs: 3,
            flip_flops: 10,
            gates: 80,
            seed: 7,
            depth_hint: None,
        },
    );
    let view = netlist.scan_view().expect("valid");
    let faults = FaultList::collapsed(&netlist);
    let mut podem = Podem::with_config(
        &netlist,
        &view,
        PodemConfig {
            backtrack_limit: 10_000,
            ..PodemConfig::default()
        },
    );
    let mut fsim = FaultSim::new(&netlist, &view);
    let free = Cube::unspecified(view.input_count());
    let claimed: Vec<_> = faults
        .faults()
        .iter()
        .copied()
        .filter(|&f| podem.generate(f, &free) == PodemResult::Untestable)
        .collect();
    assert!(
        !claimed.is_empty(),
        "random logic always has some redundancy"
    );

    let mut rng = Prng::seed_from_u64(11);
    let mut alive = claimed;
    for _ in 0..3000 {
        if alive.is_empty() {
            break;
        }
        let tv: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
        let hits = fsim.detect(&tv, &alive);
        let before = alive.len();
        alive = alive
            .iter()
            .zip(&hits)
            .filter(|(_, &h)| !h)
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(
            alive.len(),
            before,
            "a claimed-redundant fault was detected"
        );
    }
}

#[test]
fn constrained_cubes_honor_their_pins() {
    let netlist = synthesize(
        "pins",
        &SynthConfig {
            inputs: 4,
            outputs: 3,
            flip_flops: 12,
            gates: 90,
            seed: 3,
            depth_hint: None,
        },
    );
    let view = netlist.scan_view().expect("valid");
    let faults = FaultList::collapsed(&netlist);
    let mut podem = Podem::new(&netlist, &view);
    let mut fsim = FaultSim::new(&netlist, &view);
    let mut rng = Prng::seed_from_u64(5);

    // Pin the last half of the scan cells to a random previous response.
    let v0: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
    let out = fsim.good_outputs(&v0);
    let (p, q, l) = (view.pi_count(), view.po_count(), view.ppi_count());
    let k = l / 2;
    let mut constraint = Cube::unspecified(p + l);
    for j in k..l {
        constraint.set(p + j, Logic::from(out.get(q + j - k)));
    }

    for &fault in faults.faults() {
        if let PodemResult::Test(cube) = podem.generate(fault, &constraint) {
            for j in k..l {
                assert_eq!(
                    cube[p + j],
                    constraint[p + j],
                    "pinned bit {j} violated for {}",
                    fault.display_in(&netlist)
                );
            }
            let bits = cube.random_fill(&mut rng);
            assert!(fsim.detect(&bits, &[fault])[0]);
        }
    }
}
