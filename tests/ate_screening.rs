//! The strongest end-to-end validation in the repository: generated
//! stitched schedules, exported as pin-level test programs and executed on
//! a cycle-accurate virtual tester, must FAIL for exactly the faults the
//! engine claims to catch.

use tvs::ate::{Dut, TestProgram, VirtualAte};
use tvs::circuits::{fig1, synthesize, SynthConfig};
use tvs::fault::FaultList;
use tvs::stitch::{StitchConfig, StitchEngine};

fn screen(netlist: &tvs::netlist::Netlist, config: &StitchConfig) {
    let engine = StitchEngine::new(netlist).expect("sequential circuit");
    let report = engine.run(config).expect("run");
    let program = TestProgram::from_report(netlist, &report, config);
    let view = netlist.scan_view().expect("valid");
    let mut dut = Dut::new(netlist, &view, config.capture, config.observe);

    // The good part passes.
    assert!(
        VirtualAte::execute(&program, &mut dut).passed(),
        "fault-free part must pass its own program"
    );

    // Defective parts are screened: the engine's claimed coverage must be
    // real at the pin level.
    let faults = FaultList::collapsed(netlist);
    let mut screened = 0usize;
    let mut escaped = Vec::new();
    for &fault in faults.faults() {
        dut.inject(fault);
        if VirtualAte::execute(&program, &mut dut).passed() {
            escaped.push(fault.display_in(netlist));
        } else {
            screened += 1;
        }
    }
    let claimed = (report.metrics.fault_coverage * (faults.len() - report.redundant.len()) as f64)
        .round() as usize;
    assert!(
        screened >= claimed,
        "engine claims {claimed} caught but the tester screens only {screened} \
         (escapes: {escaped:?})"
    );
    // Redundant faults cannot be screened by any program.
    assert!(
        escaped.len() <= faults.len() - claimed,
        "too many escapes: {escaped:?}"
    );
}

#[test]
fn fig1_program_screens_all_irredundant_faults() {
    let netlist = fig1();
    screen(&netlist, &StitchConfig::default());
}

#[test]
fn synthetic_program_screens_its_claimed_coverage() {
    let netlist = synthesize(
        "screen",
        &SynthConfig {
            inputs: 5,
            outputs: 4,
            flip_flops: 14,
            gates: 110,
            seed: 77,
            depth_hint: None,
        },
    );
    screen(&netlist, &StitchConfig::default());
}

#[test]
fn vxor_program_screens_too() {
    use tvs::scan::CaptureTransform;
    let netlist = synthesize(
        "screen-vxor",
        &SynthConfig {
            inputs: 4,
            outputs: 3,
            flip_flops: 12,
            gates: 90,
            seed: 5,
            depth_hint: None,
        },
    );
    let config = StitchConfig {
        capture: CaptureTransform::VerticalXor,
        ..StitchConfig::default()
    };
    screen(&netlist, &config);
}

#[test]
fn programs_round_trip_through_tvp_text() {
    let netlist = fig1();
    let config = StitchConfig::default();
    let engine = StitchEngine::new(&netlist).expect("sequential");
    let report = engine.run(&config).expect("run");
    let program = TestProgram::from_report(&netlist, &report, &config);
    let text = program.to_text();
    let back = TestProgram::parse(&text).expect("reparse");
    assert_eq!(back, program);

    // The reparsed program screens identically.
    let view = netlist.scan_view().expect("valid");
    let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);
    assert!(VirtualAte::execute(&back, &mut dut).passed());
}

#[test]
fn conventional_program_from_patterns_screens_baseline_coverage() {
    use tvs::atpg::{generate_tests, AtpgConfig};
    let netlist = fig1();
    let set = generate_tests(&netlist, &AtpgConfig::default()).expect("baseline");
    let program = TestProgram::from_patterns(&netlist, &set.patterns);
    let view = netlist.scan_view().expect("valid");
    let mut dut = Dut::new(&netlist, &view, program.capture, program.observe);
    assert!(VirtualAte::execute(&program, &mut dut).passed());

    let faults = FaultList::collapsed(&netlist);
    let mut escapes = Vec::new();
    for &fault in faults.faults() {
        dut.inject(fault);
        if VirtualAte::execute(&program, &mut dut).passed() {
            escapes.push(fault.display_in(&netlist));
        }
    }
    assert_eq!(
        escapes,
        vec!["E-F/1".to_string()],
        "only the redundant fault escapes"
    );
}
