//! The paper's Figure 3 (vertical XOR) and Figure 4 (horizontal XOR)
//! mechanics through the public API.

use tvs::logic::BitVec;
use tvs::scan::{CaptureTransform, ObserveTransform, ScanChain};

fn bv(s: &str) -> BitVec {
    s.chars().map(|c| c == '1').collect()
}

#[test]
fn figure3_vertical_xor_preserves_hidden_effects() {
    // Fig. 3's point: with plain capture, a hidden fault whose next
    // response equals the fault-free one is erased; with VXOR the chain
    // keeps R ⊕ T, so the differing stimulus T_f keeps the effect alive.
    let t_good = bv("0110");
    let t_fault = bv("0010"); // mutated by a retained faulty bit
    let r_same = bv("1011"); // circuit output happens to match

    let plain_good = CaptureTransform::Plain.capture(&t_good, &r_same);
    let plain_fault = CaptureTransform::Plain.capture(&t_fault, &r_same);
    assert_eq!(plain_good, plain_fault, "plain capture erases the effect");

    let vx_good = CaptureTransform::VerticalXor.capture(&t_good, &r_same);
    let vx_fault = CaptureTransform::VerticalXor.capture(&t_fault, &r_same);
    assert_ne!(vx_good, vx_fault, "VXOR preserves the effect");
}

#[test]
fn figure3_elimination_condition() {
    // VXOR erases a hidden fault iff R_f ⊕ T_f == R_good ⊕ T_good — i.e.
    // the response difference aligns bit-for-bit with the vector
    // difference.
    let t_good = bv("0000");
    let r_good = bv("1100");
    let t_fault = bv("0100");
    let r_fault = bv("1000"); // differs exactly where T differs
    assert_eq!(
        CaptureTransform::VerticalXor.capture(&t_fault, &r_fault),
        CaptureTransform::VerticalXor.capture(&t_good, &r_good),
    );
}

#[test]
fn figure4_horizontal_xor_stream() {
    // Fig. 4: six cells a..f, three taps; the scanned-out data is
    // (b ⊕ d ⊕ f) then (a ⊕ c ⊕ e).
    let chain = ScanChain::new(6);
    let cells = [true, false, false, true, true, false]; // a..f
    let image: BitVec = cells.iter().copied().collect();
    let out = chain.shift(
        &image,
        &BitVec::zeros(2),
        ObserveTransform::HorizontalXor(3),
    );
    let (a, b, c, d, e, f) = (cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]);
    assert_eq!(out.observed.get(0), b ^ d ^ f);
    assert_eq!(out.observed.get(1), a ^ c ^ e);
}

#[test]
fn figure4_one_third_shift_passes_every_cell_through_a_tap() {
    // The paper: "shifting out one third of a scan chain will make most of
    // the hidden faults observable". With L/g ticks, every cell crosses a
    // tap, so any single-bit image difference shows in the stream.
    let l = 9;
    let chain = ScanChain::new(l);
    let base = BitVec::zeros(l);
    for p in 0..l {
        let mut flipped = base.clone();
        flipped.set(p, true);
        let k = l / 3;
        let a = chain.shift(&base, &BitVec::zeros(k), ObserveTransform::HorizontalXor(3));
        let b = chain.shift(
            &flipped,
            &BitVec::zeros(k),
            ObserveTransform::HorizontalXor(3),
        );
        assert_ne!(a.observed, b.observed, "flip at cell {p} unseen");
    }
}

#[test]
fn direct_observation_misses_retained_cells() {
    // The contrast that motivates HXOR: with direct observation a k-bit
    // shift only exposes the last k cells.
    let l = 9;
    let chain = ScanChain::new(l);
    let base = BitVec::zeros(l);
    let mut flipped = base.clone();
    flipped.set(0, true); // scan-in side
    let a = chain.shift(&base, &BitVec::zeros(3), ObserveTransform::Direct);
    let b = chain.shift(&flipped, &BitVec::zeros(3), ObserveTransform::Direct);
    assert_eq!(a.observed, b.observed, "retained-cell flip is invisible");
    assert_ne!(a.new_image, b.new_image, "but stays in the chain");
}
