//! Corrupt-snapshot robustness: every way a `.tvsnap` file can be damaged
//! must surface as a typed [`SnapshotError`] — never a panic, never a hang,
//! never a resumed run built on garbage — and the CLI must map it to exit
//! code 5 (DESIGN.md §15).
//!
//! The sweeps here are systematic (every truncation point, every line
//! dropped, forged counts at the extremes); the seed-driven `snapshot` fuzz
//! target covers the same surface probabilistically.

use std::fs;
use std::process::Command;

use tvs::circuits;
use tvs::stitch::{
    fnv1a, RunOptions, Snapshot, SnapshotError, StitchConfig, StitchEngine, StitchError,
};

fn config() -> StitchConfig {
    StitchConfig {
        seed: 17,
        threads: 1,
        ..StitchConfig::default()
    }
}

/// A real mid-flight snapshot of the s444 profile, as text.
fn real_snapshot_text() -> String {
    let netlist = circuits::profile("s444").expect("s444 profile").build();
    let engine = StitchEngine::new(&netlist).expect("engine");
    let mut first: Option<Snapshot> = None;
    let mut keep = |snap: Snapshot| {
        if first.is_none() {
            first = Some(snap);
        }
    };
    engine
        .run_with(
            &config(),
            RunOptions {
                resume: None,
                checkpoint_every: 4,
                on_checkpoint: Some(&mut keep),
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect("checkpointed run");
    first.expect("at least one checkpoint").to_text()
}

/// Re-closes a body with a correct checksum line, so only per-line
/// validation can reject what follows.
fn with_fixed_checksum(body_lines: &[&str]) -> String {
    let mut body = body_lines.join("\n");
    body.push('\n');
    let sum = fnv1a(body.as_bytes());
    body.push_str(&format!("checksum {sum:016x}\n"));
    body
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let text = real_snapshot_text();
    // Cut after every line boundary: all proper prefixes must be rejected.
    let mut cut = 0;
    while let Some(nl) = text[cut..].find('\n') {
        cut += nl + 1;
        if cut == text.len() {
            break;
        }
        let err = Snapshot::parse(&text[..cut]).expect_err("prefix accepted");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated | SnapshotError::Checksum { .. }
            ),
            "cut at byte {cut}: got {err:?}"
        );
    }
    // Mid-line cuts (no trailing newline) are equally typed...
    for cut in [1, 7, text.len() / 2] {
        Snapshot::parse(&text[..cut]).expect_err("mid-line prefix accepted");
    }
    assert!(Snapshot::parse("").is_err());
    assert!(Snapshot::parse(&text).is_ok(), "the untouched text parses");
    // ...except losing only the final newline: the checksum body is intact,
    // so a file with its last newline stripped (a common editor artifact)
    // still parses.
    assert!(Snapshot::parse(&text[..text.len() - 1]).is_ok());
}

#[test]
fn every_dropped_line_is_a_typed_error() {
    let text = real_snapshot_text();
    let lines: Vec<&str> = text.lines().collect();
    let body_len = lines.len() - 1; // the final line is the checksum
    for drop in 0..body_len {
        let kept: Vec<&str> = lines[..body_len]
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, l)| *l)
            .collect();
        let forged = with_fixed_checksum(&kept);
        let err = Snapshot::parse(&forged).expect_err("dropped line accepted");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated | SnapshotError::Version(_) | SnapshotError::Parse { .. }
            ),
            "dropping line {drop} ({:?}): got {err:?}",
            lines[drop]
        );
    }
}

#[test]
fn forged_section_counts_are_typed_not_fatal() {
    let text = real_snapshot_text();
    let body: Vec<&str> = text.lines().collect();
    let body = &body[..body.len() - 1];
    // Lie each counted section up and down, including counts so large that
    // trusting them for allocation would abort the process.
    for section in ["window ", "cycles ", "faults "] {
        let Some(at) = body.iter().position(|l| l.starts_with(section)) else {
            continue;
        };
        for count in ["0", "1", "99999999", "18446744073709551615"] {
            let forged_line = format!("{section}{count}");
            let mut lines: Vec<&str> = body.to_vec();
            lines[at] = &forged_line;
            let forged = with_fixed_checksum(&lines);
            match Snapshot::parse(&forged) {
                // A lowered count can make a structurally consistent file;
                // resume validation is the next line of defense.
                Ok(_) => {}
                Err(SnapshotError::Truncated | SnapshotError::Parse { .. }) => {}
                Err(other) => panic!("{section}{count}: got {other:?}"),
            }
        }
    }
}

#[test]
fn resume_from_tampered_state_is_typed() {
    // Swap in a foreign config fingerprint behind a valid checksum: the
    // file parses, but the engine must refuse to splice histories.
    let text = real_snapshot_text();
    let lines: Vec<&str> = text.lines().collect();
    let body = &lines[..lines.len() - 1];
    let at = body
        .iter()
        .position(|l| l.starts_with("config "))
        .expect("config line");
    let mut forged_lines: Vec<&str> = body.to_vec();
    forged_lines[at] = "config 0123456789abcdef";
    let snap = Snapshot::parse(&with_fixed_checksum(&forged_lines)).expect("parses");

    let netlist = circuits::profile("s444").expect("s444 profile").build();
    let err = StitchEngine::new(&netlist)
        .expect("engine")
        .run_with(
            &config(),
            RunOptions {
                resume: Some(snap),
                checkpoint_every: 0,
                on_checkpoint: None,
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect_err("tampered fingerprint accepted");
    assert!(
        matches!(err, StitchError::Snapshot(SnapshotError::Mismatch(_))),
        "got {err:?}"
    );
}

#[test]
fn cli_maps_corrupt_snapshots_to_exit_code_5() {
    let dir = std::env::temp_dir().join(format!("tvs-snapcorrupt-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    let bench = dir.join("s444.bench");
    let snap = dir.join("bad.tvsnap");
    let netlist = circuits::profile("s444").expect("s444 profile").build();
    fs::write(&bench, tvs::netlist::bench::to_string(&netlist)).expect("write bench");

    // A truncated file and a checksum-corrupt file both exit 5 with a
    // snapshot-prefixed message; exit 1 would mean we panicked.
    let full = real_snapshot_text();
    for (name, text) in [
        ("truncated", &full[..full.len() / 2]),
        ("flipped", &full.replace("cursor", "cursOr")),
    ] {
        fs::write(&snap, text).expect("write snapshot");
        let out = Command::new(env!("CARGO_BIN_EXE_tvs"))
            .args([
                "run",
                bench.to_str().expect("utf-8 path"),
                "--resume",
                snap.to_str().expect("utf-8 path"),
                "--seed",
                "17",
            ])
            .output()
            .expect("run tvs");
        assert_eq!(
            out.status.code(),
            Some(5),
            "{name}: status {:?}, stderr: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("snapshot"),
            "{name}: stderr names the snapshot layer: {stderr}"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
