//! Byte-identity pins of the four legacy strategies against pre-refactor
//! `main`.
//!
//! The digests below were captured on the commit *before* the strategy
//! layer existed, by running every (profile, selection) pair through
//! `run_profile` with `Scaling { factor: 0.08, full: false }` and a 20 000
//! unit work budget at one thread, then hashing the report's `Debug`
//! rendering with FNV-1a-64. `StitchReport` carries no configuration, so
//! the digests are insensitive to the `selection` → `strategy` field
//! rename and pin exactly the emitted behavior: any reordering, rng draw,
//! or budget charge introduced by the refactor shifts at least one digest.
//!
//! The big profiles (s13207 and up) exhaust the budget during prescreen,
//! so their digests coincide across strategies — they still pin the
//! salvage path byte-for-byte. Debug builds run the strategy-divergent
//! subset; release builds add s13207; `TVS_PIN_FULL=1` runs all 13.

use tvs::bench::runner::{run_profile, Scaling};
use tvs::stitch::{fnv1a, StitchConfig, StrategyId};

/// (profile, strategy name, FNV-1a-64 of `format!("{report:?}")`),
/// captured on pre-refactor main.
const PINS: &[(&str, &str, u64)] = &[
    ("s444", "random", 0xdd97dbcc3fd96589),
    ("s444", "hardness", 0xae0f5a0533f4478d),
    ("s444", "most", 0xf0c5332745a2c325),
    ("s444", "weighted", 0xeacdc57e7a2b910f),
    ("s526", "random", 0x5ed787ffe4aeed66),
    ("s526", "hardness", 0x47f124a1baa97e9a),
    ("s526", "most", 0x5d077b464c9024d5),
    ("s526", "weighted", 0xe762e1466c826160),
    ("s641", "random", 0xa17266a652babd9a),
    ("s641", "hardness", 0x35d709b0eba00f4a),
    ("s641", "most", 0xeeb9b5f5ce5a402c),
    ("s641", "weighted", 0xdd8fb2175a3c804d),
    ("s953", "random", 0x800d3af22f0f09db),
    ("s953", "hardness", 0xd22212fd650c7098),
    ("s953", "most", 0x8f0b9fc20e0fcba0),
    ("s953", "weighted", 0xe14fc6e745df160b),
    ("s1196", "random", 0xbcc2474a4ba9757f),
    ("s1196", "hardness", 0xa5c713c47bfff487),
    ("s1196", "most", 0x67279c3207277ed0),
    ("s1196", "weighted", 0xb89d40f920a5b001),
    ("s1423", "random", 0x2625034abe04ad4e),
    ("s1423", "hardness", 0xf4d608dbd62a9929),
    ("s1423", "most", 0xdb2e42d88b2fe920),
    ("s1423", "weighted", 0xf12a6c35ff995bf9),
    ("s5378", "random", 0x2b59334d1e7fbd46),
    ("s5378", "hardness", 0x8aae63315fb26973),
    ("s5378", "most", 0x21c74eec676a13e3),
    ("s5378", "weighted", 0xd2549074f2034522),
    ("s9234", "random", 0x88445497dbce343c),
    ("s9234", "hardness", 0xb103063a16dd8308),
    ("s9234", "most", 0x65752b62cc2cd2e8),
    ("s9234", "weighted", 0xabc454749a9d5a01),
    ("s13207", "random", 0x763092947d801122),
    ("s13207", "hardness", 0x763092947d801122),
    ("s13207", "most", 0x763092947d801122),
    ("s13207", "weighted", 0x763092947d801122),
    ("s15850", "random", 0xe7fa8233fc7a74b3),
    ("s15850", "hardness", 0xe7fa8233fc7a74b3),
    ("s15850", "most", 0xe7fa8233fc7a74b3),
    ("s15850", "weighted", 0xe7fa8233fc7a74b3),
    ("s35932", "random", 0x2743cb581be9809b),
    ("s35932", "hardness", 0x2743cb581be9809b),
    ("s35932", "most", 0x2743cb581be9809b),
    ("s35932", "weighted", 0x2743cb581be9809b),
    ("s38417", "random", 0x23e220b7d2aa9467),
    ("s38417", "hardness", 0x23e220b7d2aa9467),
    ("s38417", "most", 0x23e220b7d2aa9467),
    ("s38417", "weighted", 0x23e220b7d2aa9467),
    ("s38584", "random", 0xab5a2939d4a196a7),
    ("s38584", "hardness", 0xab5a2939d4a196a7),
    ("s38584", "most", 0xab5a2939d4a196a7),
    ("s38584", "weighted", 0xab5a2939d4a196a7),
];

/// Profiles cheap enough for debug builds (these eight include every
/// strategy-divergent digest in the table).
const DEBUG_PROFILES: &[&str] = &[
    "s444", "s526", "s641", "s953", "s1196", "s1423", "s5378", "s9234",
];

fn profile_enabled(name: &str) -> bool {
    if std::env::var_os("TVS_PIN_FULL").is_some() {
        return true;
    }
    if DEBUG_PROFILES.contains(&name) {
        return true;
    }
    // s13207 costs ~2 s per run in release and minutes in debug.
    cfg!(not(debug_assertions)) && name == "s13207"
}

fn check_strategy(strategy: StrategyId) {
    let scaling = Scaling {
        factor: 0.08,
        full: false,
    };
    let cfg = StitchConfig {
        strategy,
        budget: Some(20_000),
        threads: 1,
        ..StitchConfig::default()
    };
    let mut checked = 0;
    for &(profile_name, strat_name, expected) in PINS {
        if strat_name != strategy.name() || !profile_enabled(profile_name) {
            continue;
        }
        let profile = tvs::circuits::profile(profile_name).expect("known profile");
        let row = run_profile(&profile, &scaling, &cfg);
        let digest = fnv1a(format!("{:?}", row.report).as_bytes());
        assert_eq!(
            digest, expected,
            "{profile_name}/{strat_name}: report digest {digest:#018x} \
             diverged from pre-refactor main ({expected:#018x})"
        );
        checked += 1;
    }
    assert!(checked >= DEBUG_PROFILES.len(), "pin table not exercised");
}

#[test]
fn legacy_random_is_byte_identical_to_pre_refactor_main() {
    check_strategy(StrategyId::Random);
}

#[test]
fn legacy_hardness_is_byte_identical_to_pre_refactor_main() {
    check_strategy(StrategyId::Hardness);
}

#[test]
fn legacy_most_faults_is_byte_identical_to_pre_refactor_main() {
    check_strategy(StrategyId::MostFaults);
}

#[test]
fn legacy_weighted_is_byte_identical_to_pre_refactor_main() {
    check_strategy(StrategyId::Weighted);
}
