//! End-to-end pipeline tests across crates: baseline ATPG, stitched
//! generation, every configuration axis, on real-shaped circuits.

use tvs::atpg::{generate_tests, AtpgConfig};
use tvs::circuits::{s27, synthesize, SynthConfig};
use tvs::fault::{FaultList, FaultSim};
use tvs::scan::{CaptureTransform, ObserveTransform};
use tvs::stitch::{ShiftPolicy, StitchConfig, StitchEngine, ALL_STRATEGIES};

fn small_synth() -> tvs::netlist::Netlist {
    synthesize(
        "e2e",
        &SynthConfig {
            inputs: 6,
            outputs: 4,
            flip_flops: 16,
            gates: 140,
            seed: 20_03,
            depth_hint: None,
        },
    )
}

#[test]
fn baseline_atpg_covers_s27_completely() {
    let netlist = s27();
    let set = generate_tests(&netlist, &AtpgConfig::default()).expect("flow runs");
    assert!(
        set.fault_coverage >= 1.0 - 1e-9,
        "coverage {} with {} redundant, {} aborted",
        set.fault_coverage,
        set.redundant.len(),
        set.aborted.len()
    );
    // The baseline patterns really do detect what they claim: re-simulate.
    let view = netlist.scan_view().expect("valid");
    let faults = FaultList::collapsed(&netlist);
    let mut sim = FaultSim::new(&netlist, &view);
    let detected = sim.coverage(&set.patterns, faults.faults());
    let covered = detected.iter().filter(|&&d| d).count();
    assert_eq!(covered, faults.len() - set.redundant.len());
}

#[test]
fn stitched_run_on_s27_reaches_attainable_coverage() {
    let netlist = s27();
    let engine = StitchEngine::new(&netlist).expect("sequential circuit");
    let report = engine.run(&StitchConfig::default()).expect("run");
    assert!(
        report.metrics.fault_coverage >= 1.0 - 1e-9,
        "coverage {}",
        report.metrics.fault_coverage
    );
    assert!(report.metrics.stitched_vectors + report.metrics.extra_vectors > 0);
}

#[test]
fn every_policy_and_strategy_combination_runs() {
    let netlist = small_synth();
    let engine = StitchEngine::new(&netlist).expect("sequential circuit");
    for policy in [
        ShiftPolicy::Fixed(4),
        ShiftPolicy::Fixed(16),
        ShiftPolicy::default(),
    ] {
        for strategy in ALL_STRATEGIES {
            let cfg = StitchConfig {
                policy,
                strategy,
                ..StitchConfig::default()
            };
            let report = engine.run(&cfg).expect("run");
            assert!(
                report.metrics.fault_coverage > 0.9,
                "{policy:?}/{strategy:?}: coverage {}",
                report.metrics.fault_coverage
            );
        }
    }
}

#[test]
fn xor_schemes_run_and_vertical_xor_converts_hidden_faults_best() {
    let netlist = small_synth();
    let engine = StitchEngine::new(&netlist).expect("sequential circuit");
    let mut conversion = Vec::new();
    let schemes: [(CaptureTransform, ObserveTransform); 3] = [
        (CaptureTransform::Plain, ObserveTransform::Direct),
        (CaptureTransform::VerticalXor, ObserveTransform::Direct),
        (CaptureTransform::Plain, ObserveTransform::HorizontalXor(3)),
    ];
    for (capture, observe) in schemes {
        let cfg = StitchConfig {
            capture,
            observe,
            ..StitchConfig::default()
        };
        let report = engine.run(&cfg).expect("run");
        let (entered, converted, _) = report.hidden_transitions;
        conversion.push(converted as f64 / entered.max(1) as f64);
        assert!(report.metrics.fault_coverage > 0.9);
    }
    // The paper's §6.2: VXOR preserves hidden-fault effects.
    assert!(
        conversion[1] >= conversion[0],
        "VXOR conversion {:.2} below plain {:.2}",
        conversion[1],
        conversion[0]
    );
}

#[test]
fn runs_are_deterministic_and_seed_sensitive() {
    let netlist = small_synth();
    let engine = StitchEngine::new(&netlist).expect("sequential circuit");
    let a = engine.run(&StitchConfig::default()).expect("run");
    let b = engine.run(&StitchConfig::default()).expect("run");
    assert_eq!(a.shifts, b.shifts);
    assert_eq!(a.metrics.stitched_vectors, b.metrics.stitched_vectors);
    assert_eq!(a.extra_vectors, b.extra_vectors);

    let seeded = StitchConfig {
        seed: 99,
        ..StitchConfig::default()
    };
    let c = engine.run(&seeded).expect("run");
    // Seeds flow through fill and ordering; schedules almost surely differ.
    assert!(
        a.shifts != c.shifts || a.metrics.stitched_vectors != c.metrics.stitched_vectors,
        "different seeds produced identical runs (suspicious)"
    );
}

#[test]
fn generated_schedules_are_replayable() {
    // Strong cross-check: every schedule the engine emits must be
    // physically applicable — each vector's retained bits equal to the
    // shifted previous response. `replay` verifies exactly that.
    let netlist = small_synth();
    let engine = StitchEngine::new(&netlist).expect("sequential circuit");
    let cfg = StitchConfig::default();
    let report = engine.run(&cfg).expect("run");
    let vectors: Vec<_> = report.cycles.iter().map(|c| c.vector.clone()).collect();
    let trace = engine
        .replay(&vectors, &report.shifts, report.final_flush, &cfg)
        .expect("engine-generated schedules must be stitch-consistent");
    assert_eq!(trace.cycles.len(), vectors.len());
}
