//! Chaos suite: deterministic fault injection against the stitch pipeline.
//!
//! Each scenario arms an injection site (see `tvs::exec::inject`), forces a
//! failure mid-run, and asserts the contract from DESIGN.md §10: every
//! degradation path ends in a **typed error or a salvaged partial result** —
//! never a process abort — and the outcome is **bit-identical at any worker
//! thread count**.
//!
//! Injection sites compile to no-ops in release builds, so the whole suite is
//! gated on `debug_assertions`; `ci.sh` runs it as a dedicated debug stage.

#![cfg(debug_assertions)]

use tvs::circuits;
use tvs::exec::inject::{self, Trigger};
use tvs::lint::{analyze_program, has_deny, ProgramSpec};
use tvs::stitch::{
    SnapshotError, StitchConfig, StitchEngine, StitchError, StitchReport, Termination,
};

/// The inject registry is process-global, so chaos scenarios must not
/// interleave. Each test takes this lock and wraps its arming in [`Armed`],
/// which disarms everything even when an assertion fails.
fn serialized() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock, PoisonError};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

struct Armed;

impl Armed {
    fn site(site: &str, trigger: Trigger) -> Armed {
        inject::disarm_all();
        inject::arm(site, trigger);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        inject::disarm_all();
    }
}

fn config(threads: usize) -> StitchConfig {
    StitchConfig {
        seed: 7,
        threads,
        ..StitchConfig::default()
    }
}

fn run(netlist: &tvs::netlist::Netlist, cfg: &StitchConfig) -> Result<StitchReport, StitchError> {
    StitchEngine::new(netlist).and_then(|engine| engine.run(cfg))
}

/// A salvaged partial program must still satisfy the stitched-program design
/// rules (SP001–SP005) — degradation may shorten the program, never deform it.
fn assert_program_clean(report: &StitchReport, scan_len: usize, residual: usize) {
    if report.shifts.is_empty() {
        // Fully degenerate salvage (no stitched cycles at all) has no
        // program shape to check.
        return;
    }
    let spec = ProgramSpec {
        scan_len,
        shifts: report.shifts.clone(),
        final_flush: report.final_flush,
        extra_vectors: report.extra_vectors.len(),
        uncaught_at_fallback: residual,
    };
    let diags = analyze_program(&spec);
    assert!(
        !has_deny(&diags),
        "salvaged program violates design rules: {diags:?}"
    );
}

#[test]
fn simulation_worker_panic_salvages_a_partial_program() {
    let _guard = serialized();
    let netlist = circuits::profile("s444").expect("profile").build();
    let scan_len = netlist.scan_view().expect("scan view").ppi_count();

    let run_once = |threads: usize| {
        let _armed = Armed::site("stitch.sim.batch", Trigger::once_at(6));
        run(&netlist, &config(threads)).expect("panic must be salvaged, not propagated")
    };
    let report = run_once(1);

    let Termination::WorkerPanic { message, residual } = &report.termination else {
        panic!(
            "expected a worker-panic termination, got {:?}",
            report.termination
        );
    };
    assert_eq!(message, &inject::panic_message("stitch.sim.batch"));
    assert!(
        !residual.is_empty(),
        "an interrupted run leaves residual faults"
    );
    assert!(
        report.metrics.fault_coverage < 1.0,
        "salvage must not claim full coverage"
    );
    assert_program_clean(&report, scan_len, residual.len());

    // The injected failure lands on the same logical work item regardless of
    // worker count, so the salvage is bit-identical.
    let report3 = run_once(3);
    assert_eq!(report, report3, "salvage diverged across thread counts");
}

#[test]
fn podem_abort_storm_degrades_to_a_complete_deterministic_run() {
    let _guard = serialized();
    let netlist = circuits::s27();
    let scan_len = netlist.scan_view().expect("scan view").ppi_count();

    let run_once = |threads: usize| {
        let _armed = Armed::site("atpg.podem.abort", Trigger::always());
        run(&netlist, &config(threads)).expect("abort storms are a soft degradation")
    };
    let report = run_once(1);

    // With every PODEM call aborting, the engine leans entirely on random
    // vectors and fallback handling — still a structurally valid program.
    assert_eq!(report.termination, Termination::Complete);
    assert_program_clean(&report, scan_len, 0);
    assert_eq!(
        report,
        run_once(2),
        "abort storm diverged across thread counts"
    );
}

#[test]
fn corrupted_hidden_chain_image_stays_deterministic() {
    let _guard = serialized();
    let netlist = circuits::profile("s444").expect("profile").build();

    let run_once = |threads: usize| {
        let _armed = Armed::site("stitch.hidden.image", Trigger::once_at(2));
        let report = run(&netlist, &config(threads)).expect("a flipped image bit is absorbed");
        assert!(
            inject::fired_count("stitch.hidden.image") > 0,
            "the corruption site must actually fire"
        );
        report
    };
    let report = run_once(1);

    // The corruption is keyed by fault index, so it lands on the same image
    // at any worker count and the whole run stays reproducible.
    assert_eq!(
        report,
        run_once(3),
        "corruption diverged across thread counts"
    );
    assert_eq!(report.termination, Termination::Complete);
}

#[test]
fn prescreen_panic_is_a_typed_error() {
    let _guard = serialized();
    let netlist = circuits::profile("s444").expect("profile").build();
    let _armed = Armed::site("stitch.prescreen.panic", Trigger::always());

    let err = run(&netlist, &config(2)).expect_err("prescreen has nothing to salvage");
    let StitchError::WorkerPanic { message } = err else {
        panic!("expected a typed worker-panic error, got {err:?}");
    };
    assert_eq!(message, inject::panic_message("stitch.prescreen.panic"));
}

#[test]
fn truncated_and_corrupted_snapshots_are_typed_errors() {
    let _guard = serialized();
    let netlist = circuits::s27();
    let engine = StitchEngine::new(&netlist).expect("engine");
    let mut captured = Vec::new();
    let mut keep = |snap: tvs::stitch::Snapshot| captured.push(snap.to_text());
    engine
        .run_with(
            &config(1),
            tvs::stitch::RunOptions {
                resume: None,
                checkpoint_every: 1,
                on_checkpoint: Some(&mut keep),
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect("clean checkpointed run");
    let text = captured.last().expect("at least one checkpoint");

    // Truncation: drop the checksum line entirely.
    let truncated: String = text
        .lines()
        .filter(|l| !l.starts_with("checksum"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(matches!(
        tvs::stitch::Snapshot::parse(&truncated),
        Err(SnapshotError::Truncated)
    ));

    // Corruption: flip one payload character; the checksum must catch it.
    let corrupted = text.replacen("cursor", "cursoR", 1);
    assert!(matches!(
        tvs::stitch::Snapshot::parse(&corrupted),
        Err(SnapshotError::Checksum { .. })
    ));

    // Foreign version line.
    let foreign = text.replacen("tvs-snapshot v2", "tvs-snapshot v9", 1);
    assert!(matches!(
        tvs::stitch::Snapshot::parse(&foreign),
        Err(SnapshotError::Version(_) | SnapshotError::Checksum { .. })
    ));
}

#[test]
fn truncated_bench_input_is_a_located_parse_error() {
    let _guard = serialized();
    let full = tvs::netlist::bench::to_string(&circuits::s27());
    let cut = full.len() * 2 / 3;
    let truncated = &full[..cut];
    match tvs::netlist::bench::parse("s27", truncated) {
        // Depending on where the cut lands this is either a mid-line parse
        // error with a line number or a dangling-signal error; both are
        // typed, neither panics.
        Err(tvs::netlist::NetlistError::Parse { line, .. }) => assert!(line > 0),
        Err(_) => {}
        Ok(_) => panic!("truncating two thirds of s27 cannot still parse"),
    }
}

#[test]
fn stitch_budget_exhaustion_salvages_and_stays_deterministic() {
    let _guard = serialized();
    let netlist = circuits::profile("s444").expect("profile").build();
    let scan_len = netlist.scan_view().expect("scan view").ppi_count();

    let run_once = |threads: usize| {
        inject::disarm_all();
        let cfg = StitchConfig {
            budget: Some(20_000),
            ..config(threads)
        };
        run(&netlist, &cfg).expect("budget exhaustion is a soft stop")
    };
    let report = run_once(1);

    let Termination::BudgetExhausted { residual } = &report.termination else {
        panic!("expected budget exhaustion, got {:?}", report.termination);
    };
    assert!(!residual.is_empty());
    assert_program_clean(&report, scan_len, residual.len());
    assert_eq!(
        report,
        run_once(4),
        "budget stop diverged across thread counts"
    );

    // An unbudgeted run on the same circuit completes.
    let full = run(&netlist, &config(1)).expect("clean run");
    assert_eq!(full.termination, Termination::Complete);
    assert!(full.metrics.fault_coverage > report.metrics.fault_coverage);
}
