//! Lint follow-through of the strategy layer: the tester program every new
//! strategy emits must interpret cleanly under the program-level abstract
//! interpreter — in particular no SP006 (a capture or PO expectation that
//! depends on uninitialized power-up state).

use tvs::ate::TestProgram;
use tvs::circuits;
use tvs::lint::{analyze_trace, IrGraph, ProgramTrace, TraceCycle};
use tvs::logic::Logic;
use tvs::stitch::{StitchConfig, StitchEngine, StrategyId};

const NEW_STRATEGIES: [StrategyId; 3] = [
    StrategyId::Adi,
    StrategyId::SchemeSearch,
    StrategyId::Buckets,
];

/// Mirrors the CLI's lowering: stimulus bits are copied verbatim and
/// expectations are dropped (the interpreter derives its own).
fn lower(program: &TestProgram) -> ProgramTrace {
    let bits = |bv: &tvs::logic::BitVec| -> Vec<Logic> { bv.iter().map(Logic::from).collect() };
    ProgramTrace {
        capture: program.capture,
        observe: program.observe,
        cycles: program
            .cycles
            .iter()
            .map(|c| TraceCycle {
                pi: bits(&c.pi),
                scan_in: bits(&c.scan_in),
            })
            .collect(),
        final_flush: program.expected_flush.len(),
    }
}

#[test]
fn programs_from_every_new_strategy_interpret_clean() {
    for profile in ["s444", "s526"] {
        let netlist = circuits::profile(profile).expect("profile").build();
        let graph = IrGraph::from(&netlist);
        for strategy in NEW_STRATEGIES {
            let cfg = StitchConfig {
                strategy,
                seed: 17,
                threads: 1,
                ..StitchConfig::default()
            };
            let report = StitchEngine::new(&netlist)
                .expect("engine")
                .run(&cfg)
                .expect("run");
            let program = TestProgram::from_report(&netlist, &report, &cfg);
            let diags = analyze_trace(&graph, &lower(&program));
            let denies: Vec<&tvs::lint::Diagnostic> = diags
                .iter()
                .filter(|d| d.severity == tvs::lint::Severity::Deny)
                .collect();
            assert!(
                denies.is_empty(),
                "{profile}/{strategy:?}: program-level lint denies: {denies:?}"
            );
        }
    }
}
