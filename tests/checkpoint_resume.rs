//! Checkpoint/resume contract: a run that is snapshotted mid-flight and
//! resumed — at *any* worker thread count — produces a report bit-identical
//! to one that never stopped (DESIGN.md §10.4).
//!
//! These tests drive the library API directly (`StitchEngine::run_with`);
//! the `tvs run` subcommand is a thin file-I/O wrapper around it.

use tvs::circuits;
use tvs::stitch::{
    RunOptions, Snapshot, SnapshotError, StitchConfig, StitchEngine, StitchError, StitchReport,
    Termination,
};

fn config(threads: usize) -> StitchConfig {
    StitchConfig {
        seed: 17,
        threads,
        ..StitchConfig::default()
    }
}

fn netlist() -> tvs::netlist::Netlist {
    circuits::profile("s444").expect("s444 profile").build()
}

/// Runs to completion while collecting a snapshot every `every` cycles.
fn checkpointed_run(
    netlist: &tvs::netlist::Netlist,
    cfg: &StitchConfig,
    every: usize,
) -> (StitchReport, Vec<Snapshot>) {
    let engine = StitchEngine::new(netlist).expect("engine");
    let mut snaps: Vec<Snapshot> = Vec::new();
    let mut keep = |snap: Snapshot| snaps.push(snap);
    let report = engine
        .run_with(
            cfg,
            RunOptions {
                resume: None,
                checkpoint_every: every,
                on_checkpoint: Some(&mut keep),
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect("checkpointed run");
    (report, snaps)
}

fn resume_run(
    netlist: &tvs::netlist::Netlist,
    cfg: &StitchConfig,
    snapshot: Snapshot,
) -> Result<StitchReport, StitchError> {
    StitchEngine::new(netlist).expect("engine").run_with(
        cfg,
        RunOptions {
            resume: Some(snapshot),
            checkpoint_every: 0,
            on_checkpoint: None,
            on_progress: None,
            prescreen_plan: None,
            on_prescreen: None,
        },
    )
}

/// The stdout block `tvs stitch`/`tvs run` print, rendered from a report —
/// resume-equivalence is asserted down to this byte-level surface.
fn render(name: &str, report: &StitchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", name, report.metrics));
    let tail = report
        .shifts
        .get(1..report.shifts.len().min(9))
        .unwrap_or(&[]);
    out.push_str(&format!(
        "shift schedule: initial {} then {:?}… closing flush {}\n",
        report.shifts.first().copied().unwrap_or(0),
        tail,
        report.final_flush
    ));
    let (entered, converted, erased) = report.hidden_transitions;
    out.push_str(&format!(
        "hidden faults: {entered} entered, {converted} caught, {erased} erased\n"
    ));
    out
}

#[test]
fn checkpointing_does_not_perturb_the_run() {
    let netlist = netlist();
    let plain = StitchEngine::new(&netlist)
        .expect("engine")
        .run(&config(1))
        .expect("plain run");
    let (checkpointed, snaps) = checkpointed_run(&netlist, &config(1), 4);
    assert!(!snaps.is_empty(), "the run is long enough to checkpoint");
    assert_eq!(plain, checkpointed, "observing the run must not change it");
}

#[test]
fn resumed_run_is_bit_identical_at_any_thread_count() {
    let netlist = netlist();
    let (full, snaps) = checkpointed_run(&netlist, &config(1), 4);
    assert_eq!(full.termination, Termination::Complete);
    assert!(snaps.len() >= 2, "need a genuinely mid-flight snapshot");

    // Resume from an *early* snapshot — most of the run happens post-resume.
    let early = snaps.first().expect("first snapshot");
    for threads in [1, 3] {
        let resumed = resume_run(&netlist, &config(threads), early.clone()).expect("resume");
        assert_eq!(
            full, resumed,
            "resume at {threads} threads diverged from the uninterrupted run"
        );
        assert_eq!(
            render("s444", &full),
            render("s444", &resumed),
            "rendered stdout must be byte-identical"
        );
    }

    // And from the last snapshot — most of the run is replayed from state.
    let late = snaps.last().expect("last snapshot");
    let resumed = resume_run(&netlist, &config(2), late.clone()).expect("resume");
    assert_eq!(full, resumed);
}

#[test]
fn snapshot_text_round_trips_through_parse() {
    let netlist = netlist();
    let (_, snaps) = checkpointed_run(&netlist, &config(1), 4);
    for snap in &snaps {
        let text = snap.to_text();
        let parsed = Snapshot::parse(&text).expect("round trip");
        assert_eq!(snap, &parsed);
        assert_eq!(text, parsed.to_text(), "serialization is canonical");
    }
}

#[test]
fn resume_rejects_a_mismatched_configuration() {
    let netlist = netlist();
    let (_, snaps) = checkpointed_run(&netlist, &config(1), 4);
    let snap = snaps.first().expect("snapshot").clone();

    // A different selection strategy is a different run; resuming would
    // silently splice two incompatible histories.
    let mut other = config(1);
    other.strategy = tvs::stitch::StrategyId::Random;
    let err = resume_run(&netlist, &other, snap).expect_err("must reject");
    assert!(
        matches!(
            err,
            StitchError::Snapshot(SnapshotError::Mismatch(ref m)) if m.contains("config")
        ),
        "got {err:?}"
    );

    // A thread-count change is explicitly NOT a mismatch: results are
    // bit-identical at any worker count, so the fingerprint excludes it.
    let (_, snaps) = checkpointed_run(&netlist, &config(1), 4);
    resume_run(&netlist, &config(4), snaps[0].clone())
        .expect("thread count is not part of the run identity");
}

#[test]
fn resume_rejects_a_foreign_circuit() {
    let (_, snaps) = checkpointed_run(&netlist(), &config(1), 4);
    let snap = snaps.first().expect("snapshot").clone();
    let other = circuits::s27();
    let err = resume_run(&other, &config(1), snap).expect_err("must reject");
    assert!(
        matches!(err, StitchError::Snapshot(SnapshotError::Mismatch(_))),
        "got {err:?}"
    );
}

#[test]
fn budget_spend_survives_a_resume() {
    // A budgeted run that checkpoints, stops on exhaustion, and is resumed
    // with the same budget must NOT get a fresh allowance: the snapshot
    // carries the spend, so the resumed run stops exactly where the
    // uninterrupted one did.
    let netlist = netlist();
    let budgeted = StitchConfig {
        budget: Some(60_000),
        ..config(1)
    };
    let engine = StitchEngine::new(&netlist).expect("engine");
    let mut snaps: Vec<Snapshot> = Vec::new();
    let mut keep = |snap: Snapshot| snaps.push(snap);
    let full = engine
        .run_with(
            &budgeted,
            RunOptions {
                resume: None,
                checkpoint_every: 2,
                on_checkpoint: Some(&mut keep),
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: None,
            },
        )
        .expect("budgeted run");
    let Termination::BudgetExhausted { .. } = full.termination else {
        panic!("expected budget exhaustion, got {:?}", full.termination);
    };
    assert!(!snaps.is_empty());

    let resumed = resume_run(&netlist, &budgeted, snaps[0].clone()).expect("resume");
    assert_eq!(full, resumed, "resume must not refill the budget");
}
