//! `.bench` round-trip tests across the circuit catalogue.

use tvs::circuits::{fig1, profile, s27};
use tvs::netlist::bench;

fn assert_round_trip(netlist: &tvs::netlist::Netlist) {
    let text = bench::to_string(netlist);
    let back = bench::parse(netlist.name(), &text).expect("reparse");
    assert_eq!(back.gate_count(), netlist.gate_count());
    assert_eq!(back.input_count(), netlist.input_count());
    assert_eq!(back.output_count(), netlist.output_count());
    assert_eq!(back.dff_count(), netlist.dff_count());
    for id in netlist.gate_ids() {
        let name = netlist.gate_name(id);
        let other = back.find(name).expect("same signals");
        assert_eq!(netlist.gate(id).kind(), back.gate(other).kind(), "{name}");
        let fanin_a: Vec<&str> = netlist
            .gate(id)
            .fanin()
            .iter()
            .map(|&f| netlist.gate_name(f))
            .collect();
        let fanin_b: Vec<&str> = back
            .gate(other)
            .fanin()
            .iter()
            .map(|&f| back.gate_name(f))
            .collect();
        assert_eq!(fanin_a, fanin_b, "{name}");
    }
    // Second serialization is bit-identical (canonical form).
    assert_eq!(text, bench::to_string(&back));
}

#[test]
fn hand_written_circuits_round_trip() {
    assert_round_trip(&fig1());
    assert_round_trip(&s27());
}

#[test]
fn synthetic_profiles_round_trip() {
    for name in ["s444", "s641", "s1423"] {
        let netlist = profile(name).expect("known").build_scaled(0.5);
        assert_round_trip(&netlist);
    }
}

#[test]
fn scan_views_agree_after_round_trip() {
    let netlist = profile("s526").expect("known").build_scaled(0.5);
    let text = bench::to_string(&netlist);
    let back = bench::parse("s526", &text).expect("reparse");
    let va = netlist.scan_view().expect("valid");
    let vb = back.scan_view().expect("valid");
    assert_eq!(va.input_count(), vb.input_count());
    assert_eq!(va.output_count(), vb.output_count());
    assert_eq!(va.depth(), vb.depth());
    // Identical simulation semantics.
    use tvs::logic::Prng;
    let mut rng = Prng::seed_from_u64(9);
    for _ in 0..16 {
        let bits: tvs::logic::BitVec = (0..va.input_count()).map(|_| rng.next_bool()).collect();
        assert_eq!(
            tvs::sim::eval_single(&netlist, &va, &bits),
            tvs::sim::eval_single(&back, &vb, &bits)
        );
    }
}
